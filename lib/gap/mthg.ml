type criterion = Cost | Cost_times_weight | Weight | Weight_per_capacity

let all_criteria = [ Cost; Cost_times_weight; Weight; Weight_per_capacity ]

let desirability (g : Gap.t) criterion i j =
  let base = j * g.Gap.m in
  let c = g.Gap.cost.(base + i) and w = g.Gap.weight.(base + i) in
  match criterion with
  | Cost -> c
  | Cost_times_weight -> c *. w
  | Weight -> w
  | Weight_per_capacity ->
    let cap = g.Gap.capacity.(i) in
    if cap > 0.0 then w /. cap else infinity

(* Scratch buffers for one (m, n) shape, reused across every STEP-4/6
   call of a portfolio start so the steady-state inner loop allocates
   nothing.  [out] doubles as the result buffer: a solve given a
   workspace returns [out] itself, valid until the next solve with the
   same workspace (the Burkard loop blits it into its own iterate
   straight away). *)
type workspace = {
  ws_m : int;
  ws_n : int;
  residual : float array;   (* m: residual capacities during construction *)
  f1 : float array;         (* n: best feasible desirability per item *)
  f2 : float array;         (* n: second best *)
  i1 : int array;           (* n: argbest *)
  i2 : int array;           (* n: arg second best *)
  trial : int array;        (* n: construction in progress *)
  out : int array;          (* n: champion across criteria / result *)
  order : int array;        (* n: relaxed_fill placement order *)
  key : float array;        (* n: relaxed_fill sort keys *)
}

let workspace ~m ~n =
  if m < 1 || n < 0 then invalid_arg "Mthg.workspace: need m >= 1 and n >= 0";
  {
    ws_m = m;
    ws_n = n;
    residual = Array.make m 0.0;
    f1 = Array.make n infinity;
    f2 = Array.make n infinity;
    i1 = Array.make n (-1);
    i2 = Array.make n (-1);
    trial = Array.make n (-1);
    out = Array.make n (-1);
    order = Array.make n 0;
    key = Array.make n 0.0;
  }

let ensure_ws ws (g : Gap.t) =
  match ws with
  | None -> workspace ~m:g.Gap.m ~n:g.Gap.n
  | Some ws ->
    if ws.ws_m <> g.Gap.m || ws.ws_n <> g.Gap.n then
      invalid_arg
        (Printf.sprintf "Mthg: workspace is %dx%d but instance is %dx%d" ws.ws_m ws.ws_n
           g.Gap.m g.Gap.n);
    ws

(* Greedy regret construction.  For each unassigned item we track its
   best and second-best feasible desirability; the item with the
   largest regret is committed first, so items that are about to lose
   their good options are placed early.

   Each item's (best, second-best) pair is cached and only recomputed
   when the knapsack just filled was one of the two AND that knapsack
   no longer fits the item: desirabilities depend only on the fixed
   (cost, weight, capacity) data, so while the top-2 knapsacks still
   have room the cached pair is exact.  (A knapsack outside the top
   two that becomes infeasible cannot affect the top two either.)
   This cuts the refresh cascades — the measured hot spot — to the
   steps that genuinely invalidate a cache entry, and every refresh
   scan reads the item's m entries as one contiguous unboxed block
   thanks to the item-major layout. *)
let construct_into ?(criterion = Cost) (g : Gap.t) ws assignment =
  let { Gap.m; n; _ } = g in
  let weight = g.Gap.weight in
  let residual = ws.residual and f1 = ws.f1 and f2 = ws.f2 and i1 = ws.i1 and i2 = ws.i2 in
  Array.blit g.Gap.capacity 0 residual 0 m;
  Array.fill assignment 0 n (-1);
  let refresh j =
    let base = j * m in
    f1.(j) <- infinity;
    f2.(j) <- infinity;
    i1.(j) <- -1;
    i2.(j) <- -1;
    for i = 0 to m - 1 do
      if weight.(base + i) <= residual.(i) then begin
        let f = desirability g criterion i j in
        if f < f1.(j) then begin
          f2.(j) <- f1.(j);
          i2.(j) <- i1.(j);
          f1.(j) <- f;
          i1.(j) <- i
        end
        else if f < f2.(j) then begin
          f2.(j) <- f;
          i2.(j) <- i
        end
      end
    done
  in
  for j = 0 to n - 1 do
    refresh j
  done;
  let unassigned = ref n in
  let stuck = ref false in
  while !unassigned > 0 && not !stuck do
    let best_item = ref (-1) in
    let best_regret = ref neg_infinity in
    for j = 0 to n - 1 do
      if assignment.(j) = -1 then
        if i1.(j) = -1 then stuck := true
        else begin
          let regret = if f2.(j) = infinity then infinity else f2.(j) -. f1.(j) in
          if regret > !best_regret then begin
            best_regret := regret;
            best_item := j
          end
        end
    done;
    if (not !stuck) && !best_item >= 0 then begin
      let j = !best_item in
      let i = i1.(j) in
      assignment.(j) <- i;
      residual.(i) <- residual.(i) -. weight.((j * m) + i);
      decr unassigned;
      let room = residual.(i) in
      for j' = 0 to n - 1 do
        if
          assignment.(j') = -1
          && (i1.(j') = i || i2.(j') = i)
          && weight.((j' * m) + i) > room
        then refresh j'
      done
    end
    else stuck := true
  done;
  not !stuck

let construct ?criterion (g : Gap.t) =
  let ws = workspace ~m:g.Gap.m ~n:g.Gap.n in
  if construct_into ?criterion g ws ws.trial then Some ws.trial else None

type improver = [ `None | `Shift | `Shift_and_swap ]

(* In-place improver for the pooled path: [residual] must already be
   consistent with [a] (construction leaves it that way). *)
let improve_in_place improve g a ~residual =
  match improve with
  | `None -> ()
  | `Shift -> Improve.shift_in_place g a ~residual
  | `Shift_and_swap -> Improve.shift_and_swap_in_place g a ~residual

let solve ?ws ?(criteria = all_criteria) ?(improve = `Shift_and_swap) g =
  Gap.verify_domain g;
  let ws = ensure_ws ws g in
  let n = g.Gap.n in
  let found = ref false in
  let best_cost = ref infinity in
  List.iter
    (fun criterion ->
      if construct_into ~criterion g ws ws.trial then begin
        (* construction leaves ws.residual = capacity - loads(trial),
           so improvement runs in place with no setup *)
        improve_in_place improve g ws.trial ~residual:ws.residual;
        let c = Gap.cost_of g ws.trial in
        if (not !found) || c < !best_cost then begin
          found := true;
          best_cost := c;
          Array.blit ws.trial 0 ws.out 0 n
        end
      end)
    criteria;
  if !found then Some ws.out else None

let relaxed_fill_into (g : Gap.t) ws assignment =
  (* Place every item greedily by cost among fitting knapsacks; if none
     fits, take the knapsack with maximum residual capacity. *)
  let { Gap.m; n; _ } = g in
  let cost = g.Gap.cost and weight = g.Gap.weight in
  let residual = ws.residual and order = ws.order and key = ws.key in
  Array.blit g.Gap.capacity 0 residual 0 m;
  (* Big items first: standard first-fit-decreasing flavor.  Keys are
     precomputed so the sort does not rescan m weights per
     comparison. *)
  for j = 0 to n - 1 do
    order.(j) <- j;
    let base = j * m in
    let w = ref 0.0 in
    for i = 0 to m - 1 do
      w := Float.max !w weight.(base + i)
    done;
    key.(j) <- !w
  done;
  Array.sort (fun a b -> Float.compare key.(b) key.(a)) order;
  Array.iter
    (fun j ->
      let base = j * m in
      let best = ref (-1) in
      for i = 0 to m - 1 do
        if weight.(base + i) <= residual.(i)
           && (!best = -1 || cost.(base + i) < cost.(base + !best))
        then best := i
      done;
      let i =
        if !best >= 0 then !best
        else begin
          (* nothing fits: overflow the roomiest knapsack *)
          let roomiest = ref 0 in
          for i = 1 to m - 1 do
            if residual.(i) > residual.(!roomiest) then roomiest := i
          done;
          !roomiest
        end
      in
      assignment.(j) <- i;
      residual.(i) <- residual.(i) -. weight.(base + i))
    order

let solve_relaxed ?ws ?criteria ?(improve = `Shift_and_swap) g =
  Gap.verify_domain g;
  let ws = ensure_ws ws g in
  match solve ~ws ?criteria ~improve g with
  | Some a -> a
  | None ->
    relaxed_fill_into g ws ws.out;
    if Gap.feasible g ws.out then begin
      Improve.residual_into g ws.out ws.residual;
      improve_in_place improve g ws.out ~residual:ws.residual
    end;
    ws.out
