type criterion = Cost | Cost_times_weight | Weight | Weight_per_capacity

let all_criteria = [ Cost; Cost_times_weight; Weight; Weight_per_capacity ]

let desirability (g : Gap.t) criterion i j =
  let c = g.Gap.cost.(i).(j) and w = g.Gap.weight.(i).(j) in
  match criterion with
  | Cost -> c
  | Cost_times_weight -> c *. w
  | Weight -> w
  | Weight_per_capacity ->
    let cap = g.Gap.capacity.(i) in
    if cap > 0.0 then w /. cap else infinity

(* Greedy regret construction.  For each unassigned item we track its
   best and second-best feasible desirability; the item with the
   largest regret is committed first, so items that are about to lose
   their good options are placed early.

   Each item's (best, second-best) pair is cached and only recomputed
   when the knapsack just filled was one of the two (any other
   knapsack's residual is unchanged, and a knapsack outside the top
   two that becomes infeasible cannot affect the top two).  This cuts
   the naive O(n^2 m) construction down to an O(n) selection scan plus
   the genuinely dirty recomputations per step; a heap-based selection
   was tried and measured slower, because the cost is dominated by
   refresh cascades on popular knapsacks, not by the selection scan. *)
let construct ?(criterion = Cost) (g : Gap.t) =
  let { Gap.m; n; _ } = g in
  let residual = Array.copy g.Gap.capacity in
  let assignment = Array.make n (-1) in
  let f1 = Array.make n infinity and f2 = Array.make n infinity in
  let i1 = Array.make n (-1) and i2 = Array.make n (-1) in
  let refresh j =
    f1.(j) <- infinity;
    f2.(j) <- infinity;
    i1.(j) <- -1;
    i2.(j) <- -1;
    for i = 0 to m - 1 do
      if g.Gap.weight.(i).(j) <= residual.(i) then begin
        let f = desirability g criterion i j in
        if f < f1.(j) then begin
          f2.(j) <- f1.(j);
          i2.(j) <- i1.(j);
          f1.(j) <- f;
          i1.(j) <- i
        end
        else if f < f2.(j) then begin
          f2.(j) <- f;
          i2.(j) <- i
        end
      end
    done
  in
  for j = 0 to n - 1 do
    refresh j
  done;
  let unassigned = ref n in
  let stuck = ref false in
  while !unassigned > 0 && not !stuck do
    let best_item = ref (-1) in
    let best_regret = ref neg_infinity in
    for j = 0 to n - 1 do
      if assignment.(j) = -1 then
        if i1.(j) = -1 then stuck := true
        else begin
          let regret = if f2.(j) = infinity then infinity else f2.(j) -. f1.(j) in
          if regret > !best_regret then begin
            best_regret := regret;
            best_item := j
          end
        end
    done;
    if (not !stuck) && !best_item >= 0 then begin
      let j = !best_item in
      let i = i1.(j) in
      assignment.(j) <- i;
      residual.(i) <- residual.(i) -. g.Gap.weight.(i).(j);
      decr unassigned;
      for j' = 0 to n - 1 do
        if assignment.(j') = -1 && (i1.(j') = i || i2.(j') = i) then refresh j'
      done
    end
    else stuck := true
  done;
  if !stuck then None else Some assignment

type improver = [ `None | `Shift | `Shift_and_swap ]

let apply_improver improve g a =
  match improve with
  | `None -> a
  | `Shift -> Improve.shift g a
  | `Shift_and_swap -> Improve.shift_and_swap g a

let solve ?(criteria = all_criteria) ?(improve = `Shift_and_swap) g =
  Gap.verify_domain g;
  let candidates = List.filter_map (fun c -> construct ~criterion:c g) criteria in
  let candidates = List.map (apply_improver improve g) candidates in
  match candidates with
  | [] -> None
  | first :: rest ->
    Some
      (List.fold_left
         (fun best a -> if Gap.cost_of g a < Gap.cost_of g best then a else best)
         first rest)

let relaxed_fill (g : Gap.t) =
  (* Place every item greedily by cost among fitting knapsacks; if none
     fits, take the knapsack with maximum residual capacity. *)
  let { Gap.m; n; _ } = g in
  let residual = Array.copy g.Gap.capacity in
  let assignment = Array.make n (-1) in
  let order = Array.init n Fun.id in
  (* Big items first: standard first-fit-decreasing flavor. *)
  let max_weight j =
    let w = ref 0.0 in
    for i = 0 to m - 1 do
      w := Float.max !w g.Gap.weight.(i).(j)
    done;
    !w
  in
  Array.sort (fun a b -> Float.compare (max_weight b) (max_weight a)) order;
  Array.iter
    (fun j ->
      let best = ref (-1) in
      for i = 0 to m - 1 do
        if g.Gap.weight.(i).(j) <= residual.(i)
           && (!best = -1 || g.Gap.cost.(i).(j) < g.Gap.cost.(!best).(j))
        then best := i
      done;
      let i =
        if !best >= 0 then !best
        else begin
          (* nothing fits: overflow the roomiest knapsack *)
          let roomiest = ref 0 in
          for i = 1 to m - 1 do
            if residual.(i) > residual.(!roomiest) then roomiest := i
          done;
          !roomiest
        end
      in
      assignment.(j) <- i;
      residual.(i) <- residual.(i) -. g.Gap.weight.(i).(j))
    order;
  assignment

let solve_relaxed ?criteria ?(improve = `Shift_and_swap) g =
  Gap.verify_domain g;
  match solve ?criteria ~improve g with
  | Some a -> a
  | None ->
    let a = relaxed_fill g in
    if Gap.feasible g a then apply_improver improve g a else a
