type criterion = Cost | Cost_times_weight | Weight | Weight_per_capacity

let all_criteria = [ Cost; Cost_times_weight; Weight; Weight_per_capacity ]

let desirability (g : Gap.t) criterion i j =
  let base = j * g.Gap.m in
  let c = g.Gap.cost.(base + i) and w = g.Gap.weight.(base + i) in
  match criterion with
  | Cost -> c
  | Cost_times_weight -> c *. w
  | Weight -> w
  | Weight_per_capacity ->
    let cap = g.Gap.capacity.(i) in
    if cap > 0.0 then w /. cap else infinity

(* Scratch buffers for one (m, n) shape, reused across every STEP-4/6
   call of a portfolio start so the steady-state inner loop allocates
   nothing.  [out] doubles as the result buffer: a solve given a
   workspace returns [out] itself, valid until the next solve with the
   same workspace (the Burkard loop blits it into its own iterate
   straight away). *)
type workspace = {
  ws_m : int;
  ws_n : int;
  residual : float array;   (* m: residual capacities during construction *)
  f1 : float array;         (* n: best feasible desirability per item *)
  f2 : float array;         (* n: second best *)
  i1 : int array;           (* n: argbest *)
  i2 : int array;           (* n: arg second best *)
  trial : int array;        (* n: construction in progress *)
  out : int array;          (* n: champion across criteria / result *)
  order : int array;        (* n: relaxed_fill placement order / cascade scratch *)
  key : float array;        (* n: relaxed_fill sort keys *)
  sub_head : int array;     (* m: head of knapsack's subscriber list, -1 = empty *)
  sub_next : int array;     (* 2n: cell 2j = item j via i1(j), 2j+1 via i2(j) *)
  sub_prev : int array;     (* 2n *)
  mutable heap_r : float array;  (* lazy max-heap of (regret, item) entries *)
  mutable heap_j : int array;
  mutable heap_len : int;
}

let workspace ~m ~n =
  if m < 1 || n < 0 then invalid_arg "Mthg.workspace: need m >= 1 and n >= 0";
  {
    ws_m = m;
    ws_n = n;
    residual = Array.make m 0.0;
    f1 = Array.make n infinity;
    f2 = Array.make n infinity;
    i1 = Array.make n (-1);
    i2 = Array.make n (-1);
    trial = Array.make n (-1);
    out = Array.make n (-1);
    order = Array.make n 0;
    key = Array.make n 0.0;
    sub_head = Array.make m (-1);
    sub_next = Array.make (2 * n) (-1);
    sub_prev = Array.make (2 * n) (-1);
    heap_r = Array.make (max 1 n) 0.0;
    heap_j = Array.make (max 1 n) 0;
    heap_len = 0;
  }

let ensure_ws ws (g : Gap.t) =
  match ws with
  | None -> workspace ~m:g.Gap.m ~n:g.Gap.n
  | Some ws ->
    if ws.ws_m <> g.Gap.m || ws.ws_n <> g.Gap.n then
      invalid_arg
        (Printf.sprintf "Mthg: workspace is %dx%d but instance is %dx%d" ws.ws_m ws.ws_n
           g.Gap.m g.Gap.n);
    ws

(* Greedy regret construction.  For each unassigned item we track its
   best and second-best feasible desirability; the item with the
   largest regret is committed first, so items that are about to lose
   their good options are placed early.

   Each item's (best, second-best) pair is cached and only recomputed
   when the knapsack just filled was one of the two AND that knapsack
   no longer fits the item: desirabilities depend only on the fixed
   (cost, weight, capacity) data, so while the top-2 knapsacks still
   have room the cached pair is exact.  (A knapsack outside the top
   two that becomes infeasible cannot affect the top two either.)

   Two structures keep the loop out of the quadratic regime the plain
   scans paid (the measured hot spot at ~1 ms per STEP-4/6 call):

   - Selection is a lazy max-heap of (regret, item) entries ordered by
     (regret desc, item asc) — exactly the order the old linear scan
     realized with its strict-improvement sweep.  Regret changes only
     on refresh, and every refresh pushes a fresh entry, so the top
     valid entry is always the true maximum; stale entries (item
     already placed, or regret no longer current) are dropped on pop.
   - Each unassigned item subscribes to its top-2 knapsacks on
     intrusive doubly-linked lists (cell 2j via i1, 2j+1 via i2), so a
     placement into knapsack [i] walks only [i]'s subscribers instead
     of rescanning all n items for the refresh cascade.

   The construction order — and therefore the result, bit for bit —
   is unchanged; only the bookkeeping is. *)
let construct_into ?(criterion = Cost) (g : Gap.t) ws assignment =
  let { Gap.m; n; _ } = g in
  let weight = g.Gap.weight in
  let residual = ws.residual and f1 = ws.f1 and f2 = ws.f2 and i1 = ws.i1 and i2 = ws.i2 in
  let sub_head = ws.sub_head and sub_next = ws.sub_next and sub_prev = ws.sub_prev in
  Array.blit g.Gap.capacity 0 residual 0 m;
  Array.fill assignment 0 n (-1);
  Array.fill sub_head 0 m (-1);
  ws.heap_len <- 0;
  (* unassigned items with no fitting knapsack: any such item aborts
     the construction, exactly like the old full-scan stuck check *)
  let no_fit = ref 0 in
  let regret_of j = if f2.(j) = infinity then infinity else f2.(j) -. f1.(j) in
  (* The heap is 4-ary with hole-based sifting: the element under
     placement rides in registers while parents/children shift into
     the hole, so each level costs loads plus one store instead of a
     full swap, and the tree is half as deep as a binary heap's.  Pop
     order depends only on the entry multiset and the (regret desc,
     item asc) total order, never on the heap's internal shape. *)
  let push r j =
    let len = ws.heap_len in
    if len = Array.length ws.heap_j then begin
      let cap = max 8 (2 * len) in
      let nr = Array.make cap 0.0 and nj = Array.make cap 0 in
      Array.blit ws.heap_r 0 nr 0 len;
      Array.blit ws.heap_j 0 nj 0 len;
      ws.heap_r <- nr;
      ws.heap_j <- nj
    end;
    let hr = ws.heap_r and hj = ws.heap_j in
    ws.heap_len <- len + 1;
    let k = ref len in
    let continue = ref true in
    while !continue && !k > 0 do
      let p = (!k - 1) / 4 in
      if r > hr.(p) || (r = hr.(p) && j < hj.(p)) then begin
        hr.(!k) <- hr.(p);
        hj.(!k) <- hj.(p);
        k := p
      end
      else continue := false
    done;
    hr.(!k) <- r;
    hj.(!k) <- j
  in
  let pop_r = ref 0.0 and pop_j = ref 0 in
  let pop () =
    let hr = ws.heap_r and hj = ws.heap_j in
    pop_r := hr.(0);
    pop_j := hj.(0);
    let len = ws.heap_len - 1 in
    ws.heap_len <- len;
    if len > 0 then begin
      let r = hr.(len) and j = hj.(len) in
      let k = ref 0 in
      let continue = ref true in
      while !continue do
        let c0 = (4 * !k) + 1 in
        if c0 >= len then continue := false
        else begin
          let last = min (c0 + 3) (len - 1) in
          let b = ref c0 in
          for c = c0 + 1 to last do
            if hr.(c) > hr.(!b) || (hr.(c) = hr.(!b) && hj.(c) < hj.(!b)) then b := c
          done;
          if hr.(!b) > r || (hr.(!b) = r && hj.(!b) < j) then begin
            hr.(!k) <- hr.(!b);
            hj.(!k) <- hj.(!b);
            k := !b
          end
          else continue := false
        end
      done;
      hr.(!k) <- r;
      hj.(!k) <- j
    end
  in
  let unlink_cell c list_i =
    if list_i >= 0 then begin
      let p = sub_prev.(c) and nx = sub_next.(c) in
      if p >= 0 then sub_next.(p) <- nx else sub_head.(list_i) <- nx;
      if nx >= 0 then sub_prev.(nx) <- p;
      sub_prev.(c) <- -1;
      sub_next.(c) <- -1
    end
  in
  let link_cell c list_i =
    if list_i >= 0 then begin
      let h = sub_head.(list_i) in
      sub_next.(c) <- h;
      sub_prev.(c) <- -1;
      if h >= 0 then sub_prev.(h) <- c;
      sub_head.(list_i) <- c
    end
  in
  (* [linked]: the item's cells are currently on its top-2 lists (true
     for cascade refreshes; false for the initial build) *)
  let refresh ~linked j =
    (* a linked item had i1 >= 0, so its pre-refresh regret is defined *)
    let old_r = if linked then regret_of j else nan in
    if linked then begin
      unlink_cell (2 * j) i1.(j);
      unlink_cell ((2 * j) + 1) i2.(j)
    end;
    let base = j * m in
    f1.(j) <- infinity;
    f2.(j) <- infinity;
    i1.(j) <- -1;
    i2.(j) <- -1;
    (match criterion with
    | Cost ->
      (* the hot criterion (every STEP-4/6 call): read the cost cell
         directly instead of paying a call + dispatch per cell *)
      let cost = g.Gap.cost in
      for i = 0 to m - 1 do
        if weight.(base + i) <= residual.(i) then begin
          let f = cost.(base + i) in
          if f < f1.(j) then begin
            f2.(j) <- f1.(j);
            i2.(j) <- i1.(j);
            f1.(j) <- f;
            i1.(j) <- i
          end
          else if f < f2.(j) then begin
            f2.(j) <- f;
            i2.(j) <- i
          end
        end
      done
    | _ ->
      for i = 0 to m - 1 do
        if weight.(base + i) <= residual.(i) then begin
          let f = desirability g criterion i j in
          if f < f1.(j) then begin
            f2.(j) <- f1.(j);
            i2.(j) <- i1.(j);
            f1.(j) <- f;
            i1.(j) <- i
          end
          else if f < f2.(j) then begin
            f2.(j) <- f;
            i2.(j) <- i
          end
        end
      done);
    if i1.(j) = -1 then incr no_fit
    else begin
      link_cell (2 * j) i1.(j);
      link_cell ((2 * j) + 1) i2.(j);
      (* an unchanged regret keeps the item's existing heap entry
         valid (validity is checked against the current regret on
         pop), so refreshes that only reshuffle the argknapsacks —
         the common case under tie-heavy criteria — push nothing *)
      let r = regret_of j in
      if not (linked && r = old_r) then push r j
    end
  in
  for j = 0 to n - 1 do
    refresh ~linked:false j
  done;
  let unassigned = ref n in
  let stuck = ref false in
  (* cascade scratch: [order] is only live inside [relaxed_fill_into],
     never concurrently with a construction *)
  let scratch = ws.order in
  while !unassigned > 0 && not !stuck do
    if !no_fit > 0 then stuck := true
    else begin
      let j = ref (-1) in
      while !j < 0 && ws.heap_len > 0 do
        pop ();
        let cand = !pop_j in
        if assignment.(cand) = -1 && i1.(cand) >= 0 && !pop_r = regret_of cand then
          j := cand
      done;
      if !j < 0 then stuck := true
      else begin
        let j = !j in
        let i = i1.(j) in
        assignment.(j) <- i;
        unlink_cell (2 * j) i1.(j);
        unlink_cell ((2 * j) + 1) i2.(j);
        residual.(i) <- residual.(i) -. weight.((j * m) + i);
        decr unassigned;
        let room = residual.(i) in
        (* collect first: refresh relinks cells and would corrupt the
           walk.  An item appears at most once in list [i] (i1 <> i2),
           so [scratch] never overflows its n slots. *)
        let k = ref 0 in
        let c = ref sub_head.(i) in
        while !c >= 0 do
          let j' = !c lsr 1 in
          if weight.((j' * m) + i) > room then begin
            scratch.(!k) <- j';
            incr k
          end;
          c := sub_next.(!c)
        done;
        for t = 0 to !k - 1 do
          refresh ~linked:true scratch.(t)
        done
      end
    end
  done;
  not !stuck

let construct ?criterion (g : Gap.t) =
  let ws = workspace ~m:g.Gap.m ~n:g.Gap.n in
  if construct_into ?criterion g ws ws.trial then Some ws.trial else None

type improver = [ `None | `Shift | `Shift_and_swap ]

(* In-place improver for the pooled path: [residual] must already be
   consistent with [a] (construction leaves it that way). *)
let improve_in_place improve g a ~residual =
  match improve with
  | `None -> ()
  | `Shift -> Improve.shift_in_place g a ~residual
  | `Shift_and_swap -> Improve.shift_and_swap_in_place g a ~residual

let solve ?ws ?(criteria = all_criteria) ?(improve = `Shift_and_swap) g =
  Gap.verify_domain g;
  let ws = ensure_ws ws g in
  let n = g.Gap.n in
  let found = ref false in
  let best_cost = ref infinity in
  List.iter
    (fun criterion ->
      if construct_into ~criterion g ws ws.trial then begin
        (* construction leaves ws.residual = capacity - loads(trial),
           so improvement runs in place with no setup *)
        improve_in_place improve g ws.trial ~residual:ws.residual;
        let c = Gap.cost_of g ws.trial in
        if (not !found) || c < !best_cost then begin
          found := true;
          best_cost := c;
          Array.blit ws.trial 0 ws.out 0 n
        end
      end)
    criteria;
  if !found then Some ws.out else None

let relaxed_fill_into (g : Gap.t) ws assignment =
  (* Place every item greedily by cost among fitting knapsacks; if none
     fits, take the knapsack with maximum residual capacity. *)
  let { Gap.m; n; _ } = g in
  let cost = g.Gap.cost and weight = g.Gap.weight in
  let residual = ws.residual and order = ws.order and key = ws.key in
  Array.blit g.Gap.capacity 0 residual 0 m;
  (* Big items first: standard first-fit-decreasing flavor.  Keys are
     precomputed so the sort does not rescan m weights per
     comparison. *)
  for j = 0 to n - 1 do
    order.(j) <- j;
    let base = j * m in
    let w = ref 0.0 in
    for i = 0 to m - 1 do
      w := Float.max !w weight.(base + i)
    done;
    key.(j) <- !w
  done;
  Array.sort (fun a b -> Float.compare key.(b) key.(a)) order;
  Array.iter
    (fun j ->
      let base = j * m in
      let best = ref (-1) in
      for i = 0 to m - 1 do
        if weight.(base + i) <= residual.(i)
           && (!best = -1 || cost.(base + i) < cost.(base + !best))
        then best := i
      done;
      let i =
        if !best >= 0 then !best
        else begin
          (* nothing fits: overflow the roomiest knapsack *)
          let roomiest = ref 0 in
          for i = 1 to m - 1 do
            if residual.(i) > residual.(!roomiest) then roomiest := i
          done;
          !roomiest
        end
      in
      assignment.(j) <- i;
      residual.(i) <- residual.(i) -. weight.(base + i))
    order

let solve_relaxed ?ws ?criteria ?(improve = `Shift_and_swap) g =
  Gap.verify_domain g;
  let ws = ensure_ws ws g in
  match solve ~ws ?criteria ~improve g with
  | Some a -> a
  | None ->
    relaxed_fill_into g ws ws.out;
    if Gap.feasible g ws.out then begin
      Improve.residual_into g ws.out ws.residual;
      improve_in_place improve g ws.out ~residual:ws.residual
    end;
    ws.out
