let value (g : Gap.t) ~lambda =
  if Array.length lambda <> g.Gap.m then invalid_arg "Lagrangian.value: lambda length";
  Array.iter
    (fun l -> if l < 0.0 || Float.is_nan l then invalid_arg "Lagrangian.value: negative lambda")
    lambda;
  let m = g.Gap.m in
  let cost = g.Gap.cost and weight = g.Gap.weight in
  let total = ref 0.0 in
  for j = 0 to g.Gap.n - 1 do
    let base = j * m in
    let best = ref infinity in
    for i = 0 to m - 1 do
      let c = cost.(base + i) +. (lambda.(i) *. weight.(base + i)) in
      if c < !best then best := c
    done;
    total := !total +. !best
  done;
  for i = 0 to m - 1 do
    total := !total -. (lambda.(i) *. g.Gap.capacity.(i))
  done;
  !total

(* Subgradient ascent with the diminishing step a/(k+b).  The step
   scale adapts to the instance via the mean cost magnitude so the
   routine needs no tuning from callers. *)
let lower_bound ?(iterations = 100) (g : Gap.t) =
  let { Gap.m; n; _ } = g in
  let cost = g.Gap.cost and weight = g.Gap.weight in
  let lambda = Array.make m 0.0 in
  let best = ref (value g ~lambda) in
  let magnitude =
    let s = ref 0.0 in
    Array.iter (fun c -> s := !s +. Float.abs c) cost;
    Float.max 1.0 (!s /. float_of_int (max 1 (m * n)))
  in
  for k = 1 to iterations do
    (* subgradient: relaxed usage minus capacity per knapsack *)
    let usage = Array.make m 0.0 in
    for j = 0 to n - 1 do
      let base = j * m in
      let best_i = ref 0 and best_c = ref infinity in
      for i = 0 to m - 1 do
        let c = cost.(base + i) +. (lambda.(i) *. weight.(base + i)) in
        if c < !best_c then begin
          best_c := c;
          best_i := i
        end
      done;
      usage.(!best_i) <- usage.(!best_i) +. weight.(base + !best_i)
    done;
    let step = magnitude /. (5.0 +. float_of_int k) in
    for i = 0 to m - 1 do
      let gsub = usage.(i) -. g.Gap.capacity.(i) in
      lambda.(i) <- Float.max 0.0 (lambda.(i) +. (step *. gsub /. Float.max 1.0 g.Gap.capacity.(i)))
    done;
    let v = value g ~lambda in
    if v > !best then best := v
  done;
  !best

let gap_certificate g a =
  if not (Gap.feasible g a) then invalid_arg "Lagrangian.gap_certificate: infeasible assignment";
  let lb = lower_bound g in
  (Gap.cost_of g a -. lb) /. Float.max 1.0 lb
