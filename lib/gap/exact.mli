(** Exact GAP solver (depth-first branch and bound).

    Intended for small instances (roughly [n <= 20]); used to validate
    {!Mthg} in tests and in the solver-quality benchmarks.  The bound
    is the classic sum of per-item minima over the remaining items. *)

val solve : ?node_limit:int -> Gap.t -> (int array * float) option
(** Optimal assignment and its cost, or [None] if the instance is
    infeasible.  Items are explored big-first; [node_limit] (default
    10 million) caps the search and raises [Failure] when exceeded so
    callers never hang silently. *)
