(** Local improvement for GAP solutions. *)

val shift : Gap.t -> int array -> int array
(** Repeatedly move single items to a cheaper knapsack with room,
    until no improving shift exists.  Input must be feasible; the
    input array is not modified. *)

val shift_and_swap : Gap.t -> int array -> int array
(** {!shift} interleaved with improving pairwise item swaps (both
    moves must fit).  Terminates at a local optimum of the combined
    neighborhood. *)

(** {1 Allocation-free variants}

    The pooled MTHG path ({!Mthg.workspace}) already owns a residual
    array consistent with its construction, so improvement can run in
    place with zero allocation.  [residual] must equal
    [capacity - loads assignment] on entry and is maintained by the
    pass. *)

val shift_in_place : Gap.t -> int array -> residual:float array -> unit
val shift_and_swap_in_place : Gap.t -> int array -> residual:float array -> unit

val residual_into : Gap.t -> int array -> float array -> unit
(** Write [capacity - loads assignment] into a caller-provided
    length-[m] buffer. *)
