(** Local improvement for GAP solutions. *)

val shift : Gap.t -> int array -> int array
(** Repeatedly move single items to a cheaper knapsack with room,
    until no improving shift exists.  Input must be feasible; the
    input array is not modified. *)

val shift_and_swap : Gap.t -> int array -> int array
(** {!shift} interleaved with improving pairwise item swaps (both
    moves must fit).  Terminates at a local optimum of the combined
    neighborhood. *)
