(** Generalized Assignment Problem instances.

    Minimize {m Σ_j c_{σ(j), j}} over assignments {m σ} of [n] items to
    [m] knapsacks subject to knapsack capacities
    {m Σ_{σ(j)=i} w_{ij} ≤ cap_i}.

    This is the subproblem solved twice per iteration of the
    generalized Burkard heuristic (paper section 4.3: "in STEP 4 and
    STEP 6 we are actually solving Generalized Assignment Problems")
    and, with {m β = 0} and no timing constraints, the paper's
    section 2.2.2 special case of the partitioning problem itself.
    Weights may depend on the knapsack ({m w_{ij}}), as in the GAP
    literature; the partitioning use-case has {m w_{ij} = s_j}. *)

type t = private {
  m : int;                      (** knapsacks *)
  n : int;                      (** items *)
  cost : float array array;     (** [m × n]: {m c_{ij}} *)
  weight : float array array;   (** [m × n]: {m w_{ij}}, all > 0 *)
  capacity : float array;       (** length [m] *)
  owner : int option;
      (** the {!Domain} that [borrow]ed the aliased buffers; [None]
          for [make]'s owned copies *)
}

val make :
  cost:float array array ->
  weight:float array array ->
  capacity:float array ->
  t
(** @raise Invalid_argument on dimension mismatch, non-positive
    weights, negative capacities, or NaN entries. *)

val make_uniform :
  cost:float array array -> sizes:float array -> capacity:float array -> t
(** Item weights independent of the knapsack — the partitioning case
    ({m w_{ij} = s_j}). *)

val borrow :
  cost:float array array ->
  weight:float array array ->
  capacity:float array ->
  t
(** Zero-copy {!make} for hot loops: the instance {e aliases} the
    caller's arrays, so refreshing [cost] in place and re-solving
    avoids the per-call copy and validation of two {m m×n} matrices.
    The caller owns the invariants ([make]'s positivity/NaN checks are
    skipped); rows may alias each other (e.g. all weight rows sharing
    one sizes array).  The instance remembers the calling domain: the
    aliased buffers are single-domain scratch space (each portfolio
    start builds its own), and {!verify_domain} enforces that at every
    MTHG entry point.  @raise Invalid_argument if there are no
    knapsacks or the row counts disagree with [capacity]. *)

val verify_domain : t -> unit
(** No-op for [make]-built instances.  For [borrow]ed instances,
    @raise Invalid_argument when called from a domain other than the
    borrower — a borrowed instance crossing domains means two solvers
    could scribble on the same cost/weight buffers concurrently. *)

val cost_of : t -> int array -> float
(** Objective of an assignment (item [j] in knapsack [a.(j)]). *)

val loads : t -> int array -> float array
val feasible : t -> int array -> bool
(** Capacity feasibility; also false if some item is out of range. *)

val excess : t -> int array -> float
(** Total capacity overflow; 0 iff feasible. *)
