(** Generalized Assignment Problem instances.

    Minimize {m Σ_j c_{σ(j), j}} over assignments {m σ} of [n] items to
    [m] knapsacks subject to knapsack capacities
    {m Σ_{σ(j)=i} w_{ij} ≤ cap_i}.

    This is the subproblem solved twice per iteration of the
    generalized Burkard heuristic (paper section 4.3: "in STEP 4 and
    STEP 6 we are actually solving Generalized Assignment Problems")
    and, with {m β = 0} and no timing constraints, the paper's
    section 2.2.2 special case of the partitioning problem itself.
    Weights may depend on the knapsack ({m w_{ij}}), as in the GAP
    literature; the partitioning use-case has {m w_{ij} = s_j}.

    {b Storage is flat and unboxed}: cost and weight are single
    [float array]s in {e item-major} order — entry {m (i, j)} lives at
    index {m j·m + i}.  Every hot loop of {!Mthg}, {!Improve} and
    {!Lagrangian} scans the [m] knapsack entries of one item, which
    this layout makes a contiguous unboxed block (one or two cache
    lines) instead of a gather across [m] boxed rows.  The layout is
    deliberately identical to the solver's eta vector
    ({m r = i + j·M}), so a Burkard iteration can alias its eta/h
    buffers as the GAP cost matrix with zero copying. *)

type t = private {
  m : int;                  (** knapsacks *)
  n : int;                  (** items *)
  cost : float array;       (** flat item-major [m*n]: {m c_{ij}} at [j*m + i] *)
  weight : float array;     (** flat item-major [m*n]: {m w_{ij}}, all > 0 *)
  capacity : float array;   (** length [m] *)
  owner : int option;
      (** the {!Domain} that [borrow]ed the aliased buffers; [None]
          for [make]'s owned copies *)
}

val index : t -> i:int -> j:int -> int
(** Flat index of entry {m (i, j)}: [j*m + i]. *)

val cost_at : t -> i:int -> j:int -> float
val weight_at : t -> i:int -> j:int -> float
(** Convenience accessors (tests, printing); hot loops inline the
    index arithmetic instead. *)

val make :
  cost:float array array ->
  weight:float array array ->
  capacity:float array ->
  t
(** Construction from conventional [m×n] boxed matrices; the instance
    stores validated flat copies.
    @raise Invalid_argument on dimension mismatch, non-positive
    weights, negative capacities, or NaN entries. *)

val make_uniform :
  cost:float array array -> sizes:float array -> capacity:float array -> t
(** Item weights independent of the knapsack — the partitioning case
    ({m w_{ij} = s_j}). *)

val uniform_weights : sizes:float array -> m:int -> float array
(** The flat item-major weight array with {m w_{ij} = s_j} — built
    once per portfolio start (weights are iteration-invariant) and
    lent to {!borrow}. *)

val borrow :
  cost:float array ->
  weight:float array ->
  capacity:float array ->
  n:int ->
  t
(** Zero-copy {!make} for hot loops: the instance {e aliases} the
    caller's flat item-major arrays (length [m*n] with
    [m = Array.length capacity]), so refreshing [cost] in place — or
    simply aliasing a buffer the caller already maintains, like the
    Burkard eta vector — and re-solving avoids the per-call copy and
    validation of two {m m×n} matrices.  The caller owns the
    invariants ([make]'s positivity/NaN checks are skipped).  The
    instance remembers the calling domain: the aliased buffers are
    single-domain scratch space (each portfolio start builds its own),
    and {!verify_domain} enforces that at every MTHG entry point.
    @raise Invalid_argument if there are no knapsacks or the array
    lengths disagree with [m*n]. *)

val refresh_cost : t -> float array -> unit
(** Overwrite the cost matrix from a flat item-major source (a blit) —
    for callers that cannot alias the source buffer outright.
    @raise Invalid_argument on length mismatch. *)

val verify_domain : t -> unit
(** No-op for [make]-built instances.  For [borrow]ed instances,
    @raise Invalid_argument when called from a domain other than the
    borrower — a borrowed instance crossing domains means two solvers
    could scribble on the same cost/weight buffers concurrently. *)

val fan_out : t -> t
(** A view of the same instance (same aliased buffers) with the domain
    guard released, for a fork-join fan-out of {e read-only} solver
    legs onto other domains while the borrower blocks until they all
    finish.  The caller owns that discipline: the view passes
    {!verify_domain} everywhere, so misusing it re-opens exactly the
    cross-domain scribbling the guard exists to catch.  Constant-time
    (a record copy); [make]-built instances are returned unchanged in
    behaviour. *)

val cost_of : t -> int array -> float
(** Objective of an assignment (item [j] in knapsack [a.(j)]). *)

val loads : t -> int array -> float array
val feasible : t -> int array -> bool
(** Capacity feasibility; also false if some item is out of range. *)

val excess : t -> int array -> float
(** Total capacity overflow; 0 iff feasible. *)
