(** Lagrangian relaxation lower bound for the GAP.

    Jornsten & Nasberg's Lagrangian approach (the paper's reference
    [14]) relaxes the capacity constraints with multipliers
    {m λ_i ≥ 0}:
    {m L(λ) = Σ_j min_i (c_{ij} + λ_i w_{ij}) − Σ_i λ_i cap_i},
    which lower-bounds the GAP optimum for every {m λ}; the bound is
    maximized by projected subgradient ascent.  Used to certify the
    quality of {!Mthg} solutions in tests and benchmarks without
    paying for exact branch and bound. *)

val value : Gap.t -> lambda:float array -> float
(** {m L(λ)} for given multipliers (length [m], all ≥ 0).
    @raise Invalid_argument on a bad [lambda]. *)

val lower_bound : ?iterations:int -> Gap.t -> float
(** Best bound found by subgradient ascent from {m λ = 0} with the
    classic diminishing step rule ([iterations] defaults to 100).
    Always a valid lower bound on the optimal GAP cost; [-inf] never
    occurs, and for loose capacities the bound typically equals the
    LP-free assignment bound {m Σ_j min_i c_{ij}}. *)

val gap_certificate : Gap.t -> int array -> float
(** [gap_certificate g a] is the relative optimality gap certificate
    [(cost a - lb) / max 1 lb] for a feasible assignment; 0 means
    provably optimal. @raise Invalid_argument if [a] is infeasible. *)
