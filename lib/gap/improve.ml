(* All passes index the flat item-major matrices directly: for a fixed
   item [j] the m knapsack entries sit at [j*m .. j*m+m-1], so the
   shift scan reads one contiguous unboxed block per item. *)

let shift_pass (g : Gap.t) assignment residual =
  let m = g.Gap.m in
  let cost = g.Gap.cost and weight = g.Gap.weight in
  let improved = ref false in
  for j = 0 to g.Gap.n - 1 do
    let base = j * m in
    let from = assignment.(j) in
    let best = ref from in
    let best_cost = ref cost.(base + from) in
    for i = 0 to m - 1 do
      if i <> from && weight.(base + i) <= residual.(i) && cost.(base + i) < !best_cost
      then begin
        best := i;
        best_cost := cost.(base + i)
      end
    done;
    if !best <> from then begin
      let i = !best in
      residual.(from) <- residual.(from) +. weight.(base + from);
      residual.(i) <- residual.(i) -. weight.(base + i);
      assignment.(j) <- i;
      improved := true
    end
  done;
  !improved

let swap_pass (g : Gap.t) assignment residual =
  let m = g.Gap.m in
  let cost = g.Gap.cost and weight = g.Gap.weight in
  let improved = ref false in
  let n = g.Gap.n in
  for j1 = 0 to n - 1 do
    for j2 = j1 + 1 to n - 1 do
      let i1 = assignment.(j1) and i2 = assignment.(j2) in
      if i1 <> i2 then begin
        let b1 = j1 * m and b2 = j2 * m in
        let w11 = weight.(b1 + i1)
        and w22 = weight.(b2 + i2)
        and w12 = weight.(b1 + i2)
        and w21 = weight.(b2 + i1) in
        let fits1 = residual.(i1) +. w11 -. w21 >= 0.0 in
        let fits2 = residual.(i2) +. w22 -. w12 >= 0.0 in
        if fits1 && fits2 then begin
          let before = cost.(b1 + i1) +. cost.(b2 + i2) in
          let after = cost.(b1 + i2) +. cost.(b2 + i1) in
          if after < before then begin
            residual.(i1) <- residual.(i1) +. w11 -. w21;
            residual.(i2) <- residual.(i2) +. w22 -. w12;
            assignment.(j1) <- i2;
            assignment.(j2) <- i1;
            improved := true
          end
        end
      end
    done
  done;
  !improved

let residual_into (g : Gap.t) assignment residual =
  let m = g.Gap.m in
  Array.blit g.Gap.capacity 0 residual 0 m;
  Array.iteri
    (fun j i -> residual.(i) <- residual.(i) -. g.Gap.weight.((j * m) + i))
    assignment

let residual_of g assignment =
  let residual = Array.make g.Gap.m 0.0 in
  residual_into g assignment residual;
  residual

(* In-place variants: the pooled MTHG path already owns a residual
   array consistent with the assignment, so improvement runs without a
   single allocation. *)
let shift_in_place g assignment ~residual =
  while shift_pass g assignment residual do
    ()
  done

let shift_and_swap_in_place g assignment ~residual =
  let continue = ref true in
  while !continue do
    let s1 = shift_pass g assignment residual in
    let s2 = swap_pass g assignment residual in
    continue := s1 || s2
  done

let shift g assignment =
  let a = Array.copy assignment in
  let residual = residual_of g a in
  shift_in_place g a ~residual;
  a

let shift_and_swap g assignment =
  let a = Array.copy assignment in
  let residual = residual_of g a in
  shift_and_swap_in_place g a ~residual;
  a
