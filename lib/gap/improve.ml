let shift_pass (g : Gap.t) assignment residual =
  let improved = ref false in
  for j = 0 to g.Gap.n - 1 do
    let from = assignment.(j) in
    let best = ref from in
    for i = 0 to g.Gap.m - 1 do
      if i <> from
         && g.Gap.weight.(i).(j) <= residual.(i)
         && g.Gap.cost.(i).(j) < g.Gap.cost.(!best).(j)
      then best := i
    done;
    if !best <> from then begin
      let i = !best in
      residual.(from) <- residual.(from) +. g.Gap.weight.(from).(j);
      residual.(i) <- residual.(i) -. g.Gap.weight.(i).(j);
      assignment.(j) <- i;
      improved := true
    end
  done;
  !improved

let swap_pass (g : Gap.t) assignment residual =
  let improved = ref false in
  let n = g.Gap.n in
  for j1 = 0 to n - 1 do
    for j2 = j1 + 1 to n - 1 do
      let i1 = assignment.(j1) and i2 = assignment.(j2) in
      if i1 <> i2 then begin
        let w11 = g.Gap.weight.(i1).(j1)
        and w22 = g.Gap.weight.(i2).(j2)
        and w12 = g.Gap.weight.(i2).(j1)
        and w21 = g.Gap.weight.(i1).(j2) in
        let fits1 = residual.(i1) +. w11 -. w21 >= 0.0 in
        let fits2 = residual.(i2) +. w22 -. w12 >= 0.0 in
        if fits1 && fits2 then begin
          let before = g.Gap.cost.(i1).(j1) +. g.Gap.cost.(i2).(j2) in
          let after = g.Gap.cost.(i2).(j1) +. g.Gap.cost.(i1).(j2) in
          if after < before then begin
            residual.(i1) <- residual.(i1) +. w11 -. w21;
            residual.(i2) <- residual.(i2) +. w22 -. w12;
            assignment.(j1) <- i2;
            assignment.(j2) <- i1;
            improved := true
          end
        end
      end
    done
  done;
  !improved

let residual_of g assignment =
  let residual = Array.copy g.Gap.capacity in
  Array.iteri
    (fun j i -> residual.(i) <- residual.(i) -. g.Gap.weight.(i).(j))
    assignment;
  residual

let shift g assignment =
  let a = Array.copy assignment in
  let residual = residual_of g a in
  while shift_pass g a residual do
    ()
  done;
  a

let shift_and_swap g assignment =
  let a = Array.copy assignment in
  let residual = residual_of g a in
  let continue = ref true in
  while !continue do
    let s1 = shift_pass g a residual in
    let s2 = swap_pass g a residual in
    continue := s1 || s2
  done;
  a
