type solver = Mthg | Lagrangian | Exact

let solver_name = function
  | Mthg -> "mthg"
  | Lagrangian -> "lagrangian"
  | Exact -> "exact"

type config = {
  mthg_criteria : Mthg.criterion list;
  mthg_improve : Mthg.improver;
  lagrangian_iterations : int;
  exact_max_items : int;
  exact_max_cells : int;
  exact_node_limit : int;
}

let default =
  {
    mthg_criteria = [ Mthg.Cost ];
    mthg_improve = `Shift;
    lagrangian_iterations = 8;
    exact_max_items = 12;
    exact_max_cells = 96;
    exact_node_limit = 20_000;
  }

type workspace = {
  rs_m : int;
  rs_n : int;
  mthg : Mthg.workspace;
  lambda : float array;    (* m: multipliers under fit *)
  usage : float array;     (* m: relaxed knapsack usage per subgradient step *)
  residual : float array;  (* m: residual capacities of the greedy leg *)
  order : int array;       (* n: greedy placement order *)
  key : float array;       (* n: placement-order sort keys *)
  cand : int array;        (* n: the Lagrangian-greedy candidate *)
  best : int array;        (* n: the running winner *)
}

let workspace ~m ~n =
  if m < 1 || n < 0 then invalid_arg "Race.workspace: need m >= 1 and n >= 0";
  {
    rs_m = m;
    rs_n = n;
    mthg = Mthg.workspace ~m ~n;
    lambda = Array.make m 0.0;
    usage = Array.make m 0.0;
    residual = Array.make m 0.0;
    order = Array.make n 0;
    key = Array.make n 0.0;
    cand = Array.make n (-1);
    best = Array.make n (-1);
  }

let ensure_ws ws (g : Gap.t) =
  match ws with
  | None -> workspace ~m:g.Gap.m ~n:g.Gap.n
  | Some ws ->
    if ws.rs_m <> g.Gap.m || ws.rs_n <> g.Gap.n then
      invalid_arg
        (Printf.sprintf "Race: workspace is %dx%d but instance is %dx%d" ws.rs_m ws.rs_n
           g.Gap.m g.Gap.n);
    ws

(* Fit multipliers by projected subgradient (the same ascent as
   [Lagrangian.lower_bound], restated on the workspace buffers so the
   hot path allocates nothing), then construct a primal candidate:
   items big-first, each into the fitting knapsack with the cheapest
   {e adjusted} cost c_ij + lambda_i w_ij — the multipliers steer items
   away from knapsacks the relaxation says are oversubscribed, which
   is exactly where plain cheapest-first greedies overfill.  Items
   that fit nowhere overflow the roomiest knapsack, mirroring
   [Mthg.relaxed_fill_into]'s contract. *)
let lagrangian_into ~iterations (g : Gap.t) ws assignment =
  let { Gap.m; n; _ } = g in
  let cost = g.Gap.cost and weight = g.Gap.weight in
  let lambda = ws.lambda and usage = ws.usage and residual = ws.residual in
  let order = ws.order and key = ws.key in
  Array.fill lambda 0 m 0.0;
  let magnitude =
    let s = ref 0.0 in
    Array.iter (fun c -> s := !s +. Float.abs c) cost;
    Float.max 1.0 (!s /. float_of_int (max 1 (m * n)))
  in
  for k = 1 to iterations do
    Array.fill usage 0 m 0.0;
    for j = 0 to n - 1 do
      let base = j * m in
      let best_i = ref 0 and best_c = ref infinity in
      for i = 0 to m - 1 do
        let c = cost.(base + i) +. (lambda.(i) *. weight.(base + i)) in
        if c < !best_c then begin
          best_c := c;
          best_i := i
        end
      done;
      usage.(!best_i) <- usage.(!best_i) +. weight.(base + !best_i)
    done;
    let step = magnitude /. (5.0 +. float_of_int k) in
    for i = 0 to m - 1 do
      let gsub = usage.(i) -. g.Gap.capacity.(i) in
      lambda.(i) <-
        Float.max 0.0 (lambda.(i) +. (step *. gsub /. Float.max 1.0 g.Gap.capacity.(i)))
    done
  done;
  Array.blit g.Gap.capacity 0 residual 0 m;
  for j = 0 to n - 1 do
    order.(j) <- j;
    let base = j * m in
    let w = ref 0.0 in
    for i = 0 to m - 1 do
      w := Float.max !w weight.(base + i)
    done;
    key.(j) <- !w
  done;
  Array.sort (fun a b -> Float.compare key.(b) key.(a)) order;
  Array.iter
    (fun j ->
      let base = j * m in
      let best = ref (-1) and best_c = ref infinity in
      for i = 0 to m - 1 do
        if weight.(base + i) <= residual.(i) then begin
          let c = cost.(base + i) +. (lambda.(i) *. weight.(base + i)) in
          if c < !best_c then begin
            best_c := c;
            best := i
          end
        end
      done;
      let i =
        if !best >= 0 then !best
        else begin
          let roomiest = ref 0 in
          for i = 1 to m - 1 do
            if residual.(i) > residual.(!roomiest) then roomiest := i
          done;
          !roomiest
        end
      in
      assignment.(j) <- i;
      residual.(i) <- residual.(i) -. weight.(base + i))
    order;
  (* the greedy leaves [residual] consistent with [assignment], so a
     feasible candidate gets the cheap shift polish in place *)
  if Gap.feasible g assignment then Improve.shift_in_place g assignment ~residual

let exact_gated config (g : Gap.t) =
  if g.Gap.n > config.exact_max_items || g.Gap.m * g.Gap.n > config.exact_max_cells then None
  else
    match Exact.solve ~node_limit:config.exact_node_limit g with
    | result -> result
    | exception Failure _ -> None (* node budget exhausted: no candidate *)

(* Ranking: (feasibility class, badness, cost, leg order), lexicographic.
   Feasible candidates compare by cost alone; infeasible ones by
   capacity excess first — between two overflowing iterates the Burkard
   loop is better served by the one closer to the feasible set. *)
let better ~cand_feas ~cand_excess ~cand_cost ~best_feas ~best_excess ~best_cost =
  match (cand_feas, best_feas) with
  | true, false -> true
  | false, true -> false
  | true, true -> cand_cost < best_cost
  | false, false ->
    cand_excess < best_excess || (cand_excess = best_excess && cand_cost < best_cost)

let race ?(config = default) ?(pool = Qbpart_pool.Dompool.sequential) ?ws (g : Gap.t)
    ~emit =
  Gap.verify_domain g;
  let ws = ensure_ws ws g in
  let n = g.Gap.n in
  let have = ref false in
  let best_feas = ref false and best_excess = ref infinity and best_cost = ref infinity in
  let best_leg = ref Mthg in
  let offer leg a =
    let cost = Gap.cost_of g a in
    let feas = Gap.feasible g a in
    let excess = if feas then 0.0 else Gap.excess g a in
    emit leg a cost;
    if
      (not !have)
      || better ~cand_feas:feas ~cand_excess:excess ~cand_cost:cost ~best_feas:!best_feas
           ~best_excess:!best_excess ~best_cost:!best_cost
    then begin
      have := true;
      best_feas := feas;
      best_excess := excess;
      best_cost := cost;
      best_leg := leg;
      Array.blit a 0 ws.best 0 n
    end
  in
  (* The legs are independent solvers on disjoint scratch (MTHG on
     [ws.mthg], the Lagrangian on the multiplier/greedy buffers, the
     exact leg on its own allocations), so they run concurrently on
     the pool; ranking stays sequential below.  Leg order is the
     tie-break: an equal-cost later leg never evicts the incumbent
     (strict [better]), so the winner is deterministic whatever the
     pool size or leg completion order. *)
  let mthg_out = ref [||] in
  let exact_out = ref None in
  (* A borrowed instance carries a single-domain guard; the fan-out is
     the one sanctioned crossing (verified above on the borrower, legs
     read-only, borrower blocked in [run_list]), so the legs get the
     guard-released view. *)
  let gv = if Qbpart_pool.Dompool.size pool > 1 then Gap.fan_out g else g in
  Qbpart_pool.Dompool.run_list pool
    ((fun () ->
       mthg_out :=
         Mthg.solve_relaxed ~ws:ws.mthg ~criteria:config.mthg_criteria
           ~improve:config.mthg_improve gv)
    :: (fun () -> exact_out := exact_gated config gv)
    ::
    (if config.lagrangian_iterations > 0 then
       [ (fun () -> lagrangian_into ~iterations:config.lagrangian_iterations gv ws ws.cand) ]
     else []));
  offer Mthg !mthg_out;
  if config.lagrangian_iterations > 0 then offer Lagrangian ws.cand;
  (match !exact_out with
  | None -> ()
  | Some (a, _) -> offer Exact a);
  (!best_leg, ws.best)

let run ?config ?pool ?ws g =
  let all = ref [] in
  let _ =
    race ?config ?pool ?ws g ~emit:(fun leg a cost -> all := (leg, Array.copy a, cost) :: !all)
  in
  List.rev !all

let solve_relaxed ?config ?pool ?ws g = snd (race ?config ?pool ?ws g ~emit:(fun _ _ _ -> ()))
let winner ?config ?pool ?ws g = fst (race ?config ?pool ?ws g ~emit:(fun _ _ _ -> ()))
