module Constraints = Qbpart_timing.Constraints
module Netlist = Qbpart_netlist.Netlist

let table1 ppf instances =
  Format.fprintf ppf "I. circuit descriptions:@.@.";
  Format.fprintf ppf "%-8s %15s %12s %25s@." "ckt" "# of components" "# of wires"
    "# of Timing Constraints";
  List.iter
    (fun (inst : Circuits.instance) ->
      Format.fprintf ppf "%-8s %15d %12.0f %25d@."
        inst.Circuits.spec.Circuits.name
        (Netlist.n inst.Circuits.netlist)
        (Netlist.total_wire_weight inst.Circuits.netlist)
        (Constraints.count inst.Circuits.constraints))
    instances;
  Format.fprintf ppf "@."

let cell ppf (c : Runner.cell) =
  Format.fprintf ppf "%8.0f %5.1f %8.1f" c.Runner.final c.Runner.improvement_pct
    c.Runner.cpu_seconds

let results ~title ppf rows =
  Format.fprintf ppf "%s@.@." title;
  Format.fprintf ppf "%-8s %8s | %8s %5s %8s | %8s %5s %8s | %8s %5s %8s@." "circuits"
    "start" "QBP" "(-%)" "cpu" "GFM" "(-%)" "cpu" "GKL" "(-%)" "cpu";
  List.iter
    (fun (r : Runner.row) ->
      Format.fprintf ppf "%-8s %8.0f | %a | %a | %a@." r.Runner.name r.Runner.start cell
        r.Runner.qbp cell r.Runner.gfm cell r.Runner.gkl)
    rows;
  Format.fprintf ppf "@."

let robustness ppf rs =
  Format.fprintf ppf "Random-start robustness (QBP):@.@.";
  Format.fprintf ppf "%-8s %14s %18s %s@." "circuits" "from initial" "random feasible"
    "random-start finals";
  List.iter
    (fun (r : Runner.robustness) ->
      Format.fprintf ppf "%-8s %14.0f %12d/%d       %s@." r.Runner.name r.Runner.from_initial
        r.Runner.feasible_runs r.Runner.starts
        (String.concat ", "
           (List.map (fun c -> Printf.sprintf "%.0f" c) r.Runner.from_random)))
    rs;
  Format.fprintf ppf "@."

let summary ppf rows =
  let n = float_of_int (List.length rows) in
  let mean f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows /. n in
  let total f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  let qbp_imp = mean (fun r -> r.Runner.qbp.Runner.improvement_pct) in
  let gfm_imp = mean (fun r -> r.Runner.gfm.Runner.improvement_pct) in
  let gkl_imp = mean (fun r -> r.Runner.gkl.Runner.improvement_pct) in
  let qbp_cpu = total (fun r -> r.Runner.qbp.Runner.cpu_seconds) in
  let gfm_cpu = total (fun r -> r.Runner.gfm.Runner.cpu_seconds) in
  let gkl_cpu = total (fun r -> r.Runner.gkl.Runner.cpu_seconds) in
  Format.fprintf ppf
    "summary: mean improvement QBP %.1f%% / GFM %.1f%% / GKL %.1f%%; total cpu QBP %.1fs / \
     GFM %.1fs / GKL %.1fs@."
    qbp_imp gfm_imp gkl_imp qbp_cpu gfm_cpu gkl_cpu;
  let wins which f =
    List.length (List.filter f rows) |> fun k ->
    Format.fprintf ppf "  %s best on %d/%d circuits@." which k (List.length rows)
  in
  wins "QBP quality" (fun r ->
      r.Runner.qbp.Runner.final <= r.Runner.gfm.Runner.final
      && r.Runner.qbp.Runner.final <= r.Runner.gkl.Runner.final);
  wins "GFM speed" (fun r ->
      r.Runner.gfm.Runner.cpu_seconds <= r.Runner.qbp.Runner.cpu_seconds
      && r.Runner.gfm.Runner.cpu_seconds <= r.Runner.gkl.Runner.cpu_seconds)
