module Netlist = Qbpart_netlist.Netlist
module Constraints = Qbpart_timing.Constraints
module Problem = Qbpart_core.Problem
module Burkard = Qbpart_core.Burkard

type scaling_point = {
  n : int;
  wires : int;
  constraints : int;
  per_iteration_seconds : float;
  total_seconds : float;
  iterations : int;
}

let scaling ?(sizes = [ 100; 200; 400; 800 ]) ?(iterations = 30) () =
  List.map
    (fun n ->
      let inst = Circuits.scaled ~name:(Printf.sprintf "s%d" n) ~n ~seed:(3000 + n) in
      let problem = Circuits.problem inst in
      let config = { Burkard.Config.default with iterations } in
      let t0 = Sys.time () in
      let (_ : Burkard.result) = Burkard.solve ~config problem in
      let total_seconds = Sys.time () -. t0 in
      {
        n;
        wires = Netlist.wire_count inst.Circuits.netlist;
        constraints = Constraints.count inst.Circuits.constraints;
        per_iteration_seconds = total_seconds /. float_of_int iterations;
        total_seconds;
        iterations;
      })
    sizes

let pp_scaling ppf points =
  Format.fprintf ppf "%8s %10s %12s %16s %10s@." "N" "wire pairs" "constraints"
    "sec/iteration" "total";
  List.iter
    (fun p ->
      Format.fprintf ppf "%8d %10d %12d %16.4f %10.2f@." p.n p.wires p.constraints
        p.per_iteration_seconds p.total_seconds)
    points;
  (match (points, List.rev points) with
  | small :: _, big :: _ when small.n > 0 && small.per_iteration_seconds > 0.0 ->
    let size_ratio = float_of_int big.n /. float_of_int small.n in
    let time_ratio = big.per_iteration_seconds /. small.per_iteration_seconds in
    Format.fprintf ppf
      "size x%.0f -> per-iteration time x%.1f (the dense formulation would give x%.0f)@."
      size_ratio time_ratio (size_ratio *. size_ratio)
  | _ -> ())

type sweep_point = {
  parameter : float;
  qbp_pct : float;
  gfm_pct : float;
  gkl_pct : float;
  qbp_feasible : bool;
}

let capacity_sweep ?(slacks = [ 1.30; 1.15; 1.08; 1.05 ]) spec =
  List.map
    (fun slack ->
      let inst = Circuits.build ~capacity_slack:slack spec in
      match Runner.run ~with_timing:true inst with
      | row ->
        {
          parameter = slack;
          qbp_pct = row.Runner.qbp.Runner.improvement_pct;
          gfm_pct = row.Runner.gfm.Runner.improvement_pct;
          gkl_pct = row.Runner.gkl.Runner.improvement_pct;
          qbp_feasible = true;
        }
      | exception Failure _ ->
        { parameter = slack; qbp_pct = 0.0; gfm_pct = 0.0; gkl_pct = 0.0; qbp_feasible = false })
    slacks

type iteration_point = { iterations : int; final : float; cpu_seconds : float }

let iteration_sweep ?(budgets = [ 5; 10; 25; 50; 100; 200 ]) ?(with_timing = true)
    ?(config = Burkard.Config.default) inst =
  let initial = Runner.initial_solution inst in
  let problem = Circuits.problem ~with_timing inst in
  List.map
    (fun iterations ->
      let config = { config with Burkard.Config.iterations } in
      let t0 = Sys.time () in
      let result = Burkard.solve ~config ~initial problem in
      let cpu_seconds = Sys.time () -. t0 in
      let final =
        match result.Burkard.best_feasible with
        | Some (_, c) -> c
        | None -> result.Burkard.best_cost
      in
      { iterations; final; cpu_seconds })
    budgets

let pp_iteration_sweep ppf points =
  Format.fprintf ppf "%12s %12s %10s@." "iterations" "final cost" "cpu";
  List.iter
    (fun p -> Format.fprintf ppf "%12d %12.0f %9.1fs@." p.iterations p.final p.cpu_seconds)
    points

type stability = {
  name : string;
  seeds : int;
  qbp_mean : float;
  qbp_spread : float;
  gfm_mean : float;
  gfm_spread : float;
  gkl_mean : float;
  gkl_spread : float;
}

let seed_stability ?(seeds = [ 1; 2; 3 ]) ?(with_timing = true) (spec : Circuits.spec) =
  let rows =
    List.map
      (fun offset ->
        let inst = Circuits.build { spec with Circuits.seed = spec.Circuits.seed + offset } in
        Runner.run ~with_timing inst)
      seeds
  in
  let stats f =
    let xs = List.map f rows in
    let mean = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
    let lo = List.fold_left Float.min infinity xs in
    let hi = List.fold_left Float.max neg_infinity xs in
    (mean, hi -. lo)
  in
  let qbp_mean, qbp_spread = stats (fun r -> r.Runner.qbp.Runner.improvement_pct) in
  let gfm_mean, gfm_spread = stats (fun r -> r.Runner.gfm.Runner.improvement_pct) in
  let gkl_mean, gkl_spread = stats (fun r -> r.Runner.gkl.Runner.improvement_pct) in
  {
    name = spec.Circuits.name;
    seeds = List.length seeds;
    qbp_mean;
    qbp_spread;
    gfm_mean;
    gfm_spread;
    gkl_mean;
    gkl_spread;
  }

let pp_stability ppf rows =
  Format.fprintf ppf "%-8s %6s %18s %18s %18s@." "ckt" "seeds" "QBP mean±spread"
    "GFM mean±spread" "GKL mean±spread";
  List.iter
    (fun s ->
      Format.fprintf ppf "%-8s %6d %12.1f ± %3.1f %12.1f ± %3.1f %12.1f ± %3.1f@." s.name
        s.seeds s.qbp_mean s.qbp_spread s.gfm_mean s.gfm_spread s.gkl_mean s.gkl_spread)
    rows

let pp_sweep ~header ppf points =
  Format.fprintf ppf "%12s %10s %10s %10s %10s@." header "QBP (-%)" "GFM (-%)" "GKL (-%)"
    "feasible";
  List.iter
    (fun p ->
      Format.fprintf ppf "%12.2f %10.1f %10.1f %10.1f %10b@." p.parameter p.qbp_pct p.gfm_pct
        p.gkl_pct p.qbp_feasible)
    points
