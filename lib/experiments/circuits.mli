(** The benchmark suite: seven circuits calibrated to Table I.

    The paper evaluates on seven proprietary industrial circuits
    (functional-block netlists from a high-level TCM design flow).
    This module regenerates statistically equivalent instances: the
    component count, interconnection count and timing-constraint count
    match Table I exactly; component sizes span two orders of
    magnitude; wiring follows the generator's planted-cluster model;
    and there are 16 partitions arranged as a 4×4 grid with Manhattan
    {m B} and {m D}, the configuration of the paper's experiments.

    Timing budgets are planted around a {e wirelength-optimized
    reference}: a quick no-timing QBP run produces a good assignment
    {m ref}, and each sampled wire pair {m (j_1, j_2)} receives the
    directed budgets {m D_C = D(ref(j_1), ref(j_2)) + slack} with
    {m slack ∈ \{1, 2\}}.  This mirrors how real budgets arise (a
    signed-off design meets its cycle time, so the budget set is
    consistent with at least one good placement), guarantees the
    feasible region is non-empty (the reference witnesses it), and
    makes the constraints bind exactly where the optimizer wants to
    move things — the paper's "very tight Timing and Capacity
    Constraints" regime. *)

module Netlist := Qbpart_netlist.Netlist
module Stats := Qbpart_netlist.Stats
module Topology := Qbpart_topology.Topology
module Constraints := Qbpart_timing.Constraints
module Assignment := Qbpart_partition.Assignment

type spec = {
  name : string;
  n : int;                  (** Table I "# of components" *)
  wires : int;              (** Table I "# of wires" *)
  timing_constraints : int; (** Table I "# of Timing Constraints" *)
  seed : int;
}

val table1 : spec list
(** ckta … cktg with the published counts. *)

type instance = {
  spec : spec;
  netlist : Netlist.t;
  topology : Topology.t;
  constraints : Constraints.t;
  reference : Assignment.t; (** feasibility witness (C1 ∧ C2) *)
}

val build :
  ?rows:int ->
  ?cols:int ->
  ?capacity_slack:float ->
  ?reference_iterations:int ->
  spec ->
  instance
(** Default geometry 4×4 (16 partitions, as in the paper) with uniform
    capacity [total_size / M * capacity_slack] ([capacity_slack]
    defaults to 1.08 — very tight).  [reference_iterations] (default 30) is
    the budget of the no-timing QBP run that produces the planting
    reference. *)

val build_all : ?capacity_slack:float -> unit -> instance list

val scaled : name:string -> n:int -> seed:int -> instance
(** A synthetic family member of arbitrary size ([wires = 12·n],
    constraints [= 6·n]), used by scaling benchmarks. *)

val plant_constraints :
  ?slack:float * float ->
  Qbpart_netlist.Rng.t ->
  target:int ->
  Netlist.t ->
  Topology.t ->
  Assignment.t ->
  Constraints.t
(** Plant [target] directed budgets around a reference assignment
    (each gets [D(ref j1, ref j2) + s] with [s] drawn from
    [slack = (lo, hi)], 60% [lo] / 40% [hi]; default [(1, 2)], the
    Table-I regime), sampling wire pairs first, then two-hop pairs,
    then random pairs.  The reference witnesses C2-feasibility of the
    result.  Shared with {!Synth} so the 10k–100k frontier binds the
    same way Table I does. *)

val stats : instance -> Stats.t
val problem : ?with_timing:bool -> instance -> Qbpart_core.Problem.t
(** Package an instance as a PP(1,1); [with_timing] (default true)
    selects whether {m D_C} is included (Table III vs Table II). *)
