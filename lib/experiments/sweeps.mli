(** Parameter sweeps beyond the paper's two tables.

    These back the claims the paper makes in prose:

    - section 4.3: exploiting small {m M} and sparse {m A} makes one
      Burkard iteration cheap — {!scaling} measures per-iteration cost
      against circuit size, which should grow near-linearly in
      {m M·(E+T)} rather than {m M²N²};
    - abstract/section 5: the methods are compared "under very tight
      Timing and Capacity Constraints" — {!capacity_sweep} and
      {!tightness_sweep} show how the three methods' quality gap
      opens as the constraints tighten. *)

type scaling_point = {
  n : int;
  wires : int;
  constraints : int;
  per_iteration_seconds : float; (** mean over the run *)
  total_seconds : float;
  iterations : int;
}

val scaling : ?sizes:int list -> ?iterations:int -> unit -> scaling_point list
(** QBP on the {!Circuits.scaled} family ([sizes] defaults to
    [[100; 200; 400; 800]]). *)

val pp_scaling : Format.formatter -> scaling_point list -> unit

type sweep_point = {
  parameter : float;   (** slack factor, or mean timing slack *)
  qbp_pct : float;     (** improvement percentages from the shared start *)
  gfm_pct : float;
  gkl_pct : float;
  qbp_feasible : bool; (** all three are verified; QBP can in principle fail *)
}

val capacity_sweep :
  ?slacks:float list -> Circuits.spec -> sweep_point list
(** Rebuild one circuit at several capacity slack factors (default
    [[1.30; 1.15; 1.08; 1.05]]) and run all three methods with timing
    constraints. *)

val pp_sweep : header:string -> Format.formatter -> sweep_point list -> unit

type iteration_point = {
  iterations : int;
  final : float;      (** best feasible objective *)
  cpu_seconds : float;
}

val iteration_sweep :
  ?budgets:int list ->
  ?with_timing:bool ->
  ?config:Qbpart_core.Burkard.Config.t ->
  Circuits.instance ->
  iteration_point list
(** Section 4.2: "the solution quality is dependent on the number of
    iterations, the more CPU time spent, the better the results" — QBP
    on one instance from the shared start under increasing iteration
    budgets (default [[5; 10; 25; 50; 100; 200]]).  Pass
    [Burkard.Config.paper]-style configs to see the pure trajectory:
    with the polish/repair enhancements on, the best solution tends to
    saturate within a few iterations. *)

val pp_iteration_sweep : Format.formatter -> iteration_point list -> unit

type stability = {
  name : string;
  seeds : int;
  qbp_mean : float;   (** mean improvement %% over the seed draws *)
  qbp_spread : float; (** max − min *)
  gfm_mean : float;
  gfm_spread : float;
  gkl_mean : float;
  gkl_spread : float;
}

val seed_stability :
  ?seeds:int list -> ?with_timing:bool -> Circuits.spec -> stability
(** The paper reports one draw of each circuit; ours are synthetic, so
    this re-generates a circuit under several seeds (default
    [[1; 2; 3]] offsets of the spec's seed) and reports the mean and
    spread of each method's improvement — evidence that the Table II/III
    shape is a property of the circuit class, not of one lucky draw. *)

val pp_stability : Format.formatter -> stability list -> unit
