(** Experiment driver: regenerates the paper's Tables II and III.

    For each circuit, all three methods start from the same feasible
    initial solution (the paper: "This same initial solution is used
    for all three approaches"), obtained with the QBP-with-zero-B
    recipe and falling back to the timing-aware greedy.  Costs are
    total Manhattan wire length; CPU times are process seconds via
    [Sys.time]. *)

module Assignment := Qbpart_partition.Assignment

type cell = {
  final : float;           (** final cost *)
  improvement_pct : float; (** 100·(start − final)/start, the "(-%)" column *)
  cpu_seconds : float;
}

type row = {
  name : string;
  start : float;  (** cost of the shared initial solution *)
  qbp : cell;
  gfm : cell;
  gkl : cell;
}

val initial_solution : Circuits.instance -> Assignment.t
(** The shared feasible start: zero-B QBP, then greedy fallback, then
    the instance's reference perturbed by feasibility-preserving random
    moves.  Always capacity- and timing-feasible.
    @raise Failure if even the fallbacks fail (cannot happen for
    generated instances, whose reference witnesses feasibility). *)

val run :
  ?with_timing:bool ->
  ?stage_deadline:float ->
  ?qbp_config:Qbpart_core.Burkard.Config.t ->
  ?gfm_config:Qbpart_baselines.Gfm.config ->
  ?gkl_config:Qbpart_baselines.Gkl.config ->
  ?initial:Assignment.t ->
  Circuits.instance ->
  row
(** One table row.  [with_timing] selects Table III (default) vs
    Table II semantics.  [stage_deadline] gives {e each} of the three
    solver calls its own fresh wall-clock budget in seconds; an expired
    budget makes the cell report the solver's best-so-far feasible
    solution rather than aborting the row.  All three results are
    verified feasible before being reported; an infeasible result
    raises [Failure] (it would mean a solver bug, not a bad
    measurement). *)

val run_suite :
  ?with_timing:bool ->
  ?stage_deadline:float ->
  ?qbp_config:Qbpart_core.Burkard.Config.t ->
  Circuits.instance list ->
  row list

type robustness = {
  name : string;
  starts : int;            (** number of random starts attempted *)
  from_initial : float;    (** QBP final cost from the shared start *)
  from_random : float list; (** QBP final costs from random starts *)
  feasible_runs : int;     (** how many random starts reached feasibility *)
}

val random_start_robustness :
  ?starts:int -> ?with_timing:bool -> Circuits.instance -> robustness
(** The section-5 claim: "QBP maintained the same kind of good results
    from any arbitrary initial solution."  Runs QBP from [starts]
    (default 3) random C3-only assignments. *)
