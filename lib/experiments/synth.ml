module Rng = Qbpart_netlist.Rng
module Netlist = Qbpart_netlist.Netlist
module Generator = Qbpart_netlist.Generator
module Topology = Qbpart_topology.Topology
module Grid = Qbpart_topology.Grid
module Constraints = Qbpart_timing.Constraints
module Initial = Qbpart_partition.Initial
module Dompool = Qbpart_pool.Dompool

type params = {
  name : string;
  n : int;
  avg_degree : float;
  timing_density : float;
  locality : float;
  clusters : int;
  timing_slack : float * float;
  seed : int;
  rows : int;
  cols : int;
  capacity_slack : float;
}

let default ~name ~n ~seed =
  {
    name;
    n;
    avg_degree = 12.0;
    timing_density = 2.0;
    locality = 0.8;
    clusters = 0;
    timing_slack = (1.0, 2.0);
    seed;
    rows = 4;
    cols = 4;
    capacity_slack = 1.08;
  }

(* Degrees follow the paper's sparsity model: Table I interconnection
   counts per component sit between ~8 and ~24, thinning as circuits
   grow, and timing constraints cover a few budgets per component. *)
let frontier =
  [
    { (default ~name:"synth10k" ~n:10_000 ~seed:210) with avg_degree = 16.0; timing_density = 3.0 };
    { (default ~name:"synth30k" ~n:30_000 ~seed:230) with avg_degree = 12.0; timing_density = 2.0 };
    {
      (default ~name:"synth100k" ~n:100_000 ~seed:2100) with
      avg_degree = 10.0;
      timing_density = 1.5;
    };
  ]

let find name = List.find_opt (fun p -> p.name = name) frontier
let names = List.map (fun p -> p.name) frontier

let validate p =
  if p.n < 2 then invalid_arg "Synth: need at least 2 components";
  if p.avg_degree <= 0.0 || Float.is_nan p.avg_degree then
    invalid_arg "Synth: avg_degree must be positive";
  if p.timing_density < 0.0 || Float.is_nan p.timing_density then
    invalid_arg "Synth: timing_density must be >= 0";
  if p.locality < 0.0 || p.locality > 1.0 then invalid_arg "Synth: locality not in [0,1]";
  if p.clusters < 0 then invalid_arg "Synth: negative cluster count";
  if p.rows < 1 || p.cols < 1 then invalid_arg "Synth: need a non-empty grid";
  if p.capacity_slack < 1.0 then invalid_arg "Synth: capacity_slack must be >= 1";
  let lo, hi = p.timing_slack in
  if lo <= 0.0 || hi < lo then invalid_arg "Synth: timing_slack must satisfy 0 < lo <= hi"

(* Auto cluster count: one hidden cluster per ~500 components keeps
   cluster populations (and thus intra-cluster wiring structure)
   constant as n grows, instead of diluting 20 clusters over 100k
   components. *)
let clusters_of p = if p.clusters > 0 then p.clusters else max 20 (p.n / 500)
let wires_of p = int_of_float (float_of_int p.n *. p.avg_degree /. 2.0)
let timing_of p = int_of_float (float_of_int p.n *. p.timing_density)

let generator_params p =
  {
    (Generator.default_params ~n:p.n ~wires:(wires_of p)) with
    Generator.clusters = clusters_of p;
    locality = p.locality;
    max_multiplicity = 1;
  }

let spec p =
  { Circuits.name = p.name; n = p.n; wires = wires_of p; timing_constraints = timing_of p;
    seed = p.seed }

(* The planting reference at frontier scale: the Table-I path runs a
   30-iteration no-timing QBP solve, which is exactly the cold-start
   cost this workload exists to measure.  Instead, partition the
   hidden clusters round-robin over the grid — wires are mostly
   intra-cluster, so the reference is wirelength-good — and spill to
   the emptiest slot with room when a partition fills up, which keeps
   it C1-feasible.  O(n·m), so building synth100k takes seconds. *)
let reference_of_labels nl topo labels =
  let m = Topology.m topo in
  let n = Netlist.n nl in
  let free = Array.init m (Topology.capacity topo) in
  let a = Array.make n (-1) in
  let ok = ref true in
  let j = ref 0 in
  while !ok && !j < n do
    let s = Netlist.size nl !j in
    let target = labels.(!j) mod m in
    if free.(target) >= s then begin
      a.(!j) <- target;
      free.(target) <- free.(target) -. s
    end
    else begin
      let best = ref (-1) in
      for i = 0 to m - 1 do
        if free.(i) >= s && (!best = -1 || free.(i) > free.(!best)) then best := i
      done;
      if !best = -1 then ok := false
      else begin
        a.(!j) <- !best;
        free.(!best) <- free.(!best) -. s
      end
    end;
    incr j
  done;
  if !ok then Some a else None

let build ?pool p =
  validate p;
  let gp = generator_params p in
  (* [hidden_clusters] consumes the same leading stream [generate]
     does, so a fresh rng on the same seed reproduces the labels the
     generator plants. *)
  let labels = Generator.hidden_clusters (Rng.create p.seed) gp in
  let rng = Rng.create p.seed in
  let netlist = Generator.generate ~name_prefix:(p.name ^ "_c") ?pool rng gp in
  let m = p.rows * p.cols in
  let max_size =
    Array.fold_left
      (fun acc c -> Float.max acc (Qbpart_netlist.Component.size c))
      0.0 (Netlist.components netlist)
  in
  let capacity =
    Float.max
      (Netlist.total_size netlist /. float_of_int m *. p.capacity_slack)
      (max_size *. 1.05)
  in
  let topology = Grid.make ~rows:p.rows ~cols:p.cols ~capacity () in
  let reference =
    match reference_of_labels netlist topology labels with
    | Some a -> a
    | None -> (
      match Initial.first_fit_decreasing netlist topology with
      | Some a -> a
      | None -> failwith "Synth.build: capacity slack too tight for first-fit")
  in
  let constraints =
    Circuits.plant_constraints ~slack:p.timing_slack rng ~target:(timing_of p) netlist
      topology reference
  in
  { Circuits.spec = spec p; netlist; topology; constraints; reference }

let build_named ?pool name =
  match find name with
  | Some p -> Some (build ?pool p)
  | None -> None
