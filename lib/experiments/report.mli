(** ASCII rendering of the experiment tables in the paper's layout. *)

val table1 : Format.formatter -> Circuits.instance list -> unit
(** "I. circuit descriptions": components, wires, timing constraints. *)

val results : title:string -> Format.formatter -> Runner.row list -> unit
(** "II. Without Timing Constraints" / "III. With Timing Constraints":
    start cost, then (final, -%, cpu) per method. *)

val robustness : Format.formatter -> Runner.robustness list -> unit

val summary : Format.formatter -> Runner.row list -> unit
(** Aggregate shape check: mean improvement and total CPU per method,
    plus who wins on quality and speed. *)
