module Rng = Qbpart_netlist.Rng
module Netlist = Qbpart_netlist.Netlist
module Wire = Qbpart_netlist.Wire
module Generator = Qbpart_netlist.Generator
module Stats = Qbpart_netlist.Stats
module Topology = Qbpart_topology.Topology
module Grid = Qbpart_topology.Grid
module Constraints = Qbpart_timing.Constraints
module Assignment = Qbpart_partition.Assignment
module Initial = Qbpart_partition.Initial
module Problem = Qbpart_core.Problem
module Burkard = Qbpart_core.Burkard

type spec = { name : string; n : int; wires : int; timing_constraints : int; seed : int }

let table1 =
  [
    { name = "ckta"; n = 339; wires = 8200; timing_constraints = 3464; seed = 101 };
    { name = "cktb"; n = 357; wires = 3017; timing_constraints = 1325; seed = 102 };
    { name = "cktc"; n = 545; wires = 12141; timing_constraints = 11545; seed = 103 };
    { name = "cktd"; n = 521; wires = 6309; timing_constraints = 6009; seed = 104 };
    { name = "ckte"; n = 380; wires = 3831; timing_constraints = 3760; seed = 105 };
    { name = "cktf"; n = 607; wires = 4809; timing_constraints = 4683; seed = 106 };
    { name = "cktg"; n = 472; wires = 3376; timing_constraints = 3376; seed = 107 };
  ]

type instance = {
  spec : spec;
  netlist : Netlist.t;
  topology : Topology.t;
  constraints : Constraints.t;
  reference : Assignment.t;
}

(* The planting reference: a quick no-timing QBP run from a random
   start, which is both capacity-feasible and wirelength-good, so the
   budgets derived from it bind near the optimum.  Falls back to plain
   first-fit-decreasing if the solver returns nothing feasible within
   its budget (which cannot happen for sane capacity slack, but the
   fallback keeps the generator total). *)
let make_reference ~iterations nl topo =
  let problem = Problem.make nl topo in
  let config = { Burkard.Config.default with iterations } in
  match (Burkard.solve ~config problem).Burkard.best_feasible with
  | Some (a, _) -> a
  | None -> (
    match Initial.first_fit_decreasing nl topo with
    | Some a -> a
    | None -> failwith "Circuits.build: capacity slack too tight for first-fit")

let plant_constraints ?(slack = (1.0, 2.0)) rng ~target nl topo reference =
  let n = Netlist.n nl in
  (* only n(n-1) distinct directed pairs exist; an over-ambitious
     target would spin the random-pair fallback below forever *)
  let target = min target (n * (n - 1)) in
  let cons = Constraints.create ~n in
  let slack_lo, slack_hi = slack in
  let budget j1 j2 =
    let slack = if Rng.float rng 1.0 < 0.6 then slack_lo else slack_hi in
    Topology.d topo reference.(j1) reference.(j2) +. slack
  in
  let wires = Netlist.wires nl in
  let order = Array.init (Array.length wires) Fun.id in
  Rng.shuffle rng order;
  let added = ref 0 in
  let add_pair j1 j2 =
    if !added < target && not (Constraints.mem cons j1 j2) then begin
      Constraints.add cons j1 j2 (budget j1 j2);
      incr added
    end
  in
  Array.iter
    (fun k ->
      let w = wires.(k) in
      add_pair (Wire.u w) (Wire.v w);
      add_pair (Wire.v w) (Wire.u w))
    order;
  (* If the wire pairs alone cannot supply [target] directed budgets,
     extend to two-hop neighbourhoods (signals crossing one component),
     then to random pairs as a last resort. *)
  if !added < target then begin
    let xadj = Netlist.adj_offsets nl in
    let anbr = Netlist.adj_targets nl in
    let j = ref 0 in
    while !added < target && !j < n do
      for ka = xadj.(!j) to xadj.(!j + 1) - 1 do
        let a = anbr.(ka) in
        for kb = xadj.(!j) to xadj.(!j + 1) - 1 do
          let b = anbr.(kb) in
          if a < b then begin
            add_pair a b;
            add_pair b a
          end
        done
      done;
      incr j
    done
  end;
  while !added < target do
    let j1 = Rng.int rng n and j2 = Rng.int rng n in
    if j1 <> j2 then add_pair j1 j2
  done;
  cons

let build ?(rows = 4) ?(cols = 4) ?(capacity_slack = 1.08) ?(reference_iterations = 30) spec =
  let rng = Rng.create spec.seed in
  let params =
    {
      (Generator.default_params ~n:spec.n ~wires:spec.wires) with
      Generator.max_multiplicity = 1;
    }
  in
  let netlist = Generator.generate ~name_prefix:(spec.name ^ "_c") rng params in
  let m = rows * cols in
  (* The even-split capacity can fall below the largest component on
     small instances; no assignment would be feasible, so floor it. *)
  let max_size =
    Array.fold_left
      (fun acc c -> Float.max acc (Qbpart_netlist.Component.size c))
      0.0 (Netlist.components netlist)
  in
  let capacity =
    Float.max
      (Netlist.total_size netlist /. float_of_int m *. capacity_slack)
      (max_size *. 1.05)
  in
  let topology = Grid.make ~rows ~cols ~capacity () in
  let reference = make_reference ~iterations:reference_iterations netlist topology in
  let constraints =
    plant_constraints rng ~target:spec.timing_constraints netlist topology reference
  in
  { spec; netlist; topology; constraints; reference }

let build_all ?capacity_slack () =
  List.map (fun spec -> build ?capacity_slack spec) table1

let scaled ~name ~n ~seed =
  build { name; n; wires = 12 * n; timing_constraints = 6 * n; seed }

let stats t = Stats.of_netlist ~name:t.spec.name t.netlist

let problem ?(with_timing = true) t =
  if with_timing then Problem.make ~constraints:t.constraints t.netlist t.topology
  else Problem.make t.netlist t.topology
