(** The synthetic workload frontier: 10k–100k-component circuits.

    Table I tops out at 607 components; this module extrapolates the
    paper's sparsity model to VLSI scale.  Instances follow the same
    planted-cluster generator and constraint-planting recipe as
    {!Circuits}, but the planting reference comes from the hidden
    cluster labels (round-robin over the grid with capacity spill)
    instead of a QBP pre-solve, so a 100k-component instance builds in
    seconds.  All construction is seeded and deterministic: the same
    [params] always produce the identical instance. *)

type params = {
  name : string;
  n : int;                 (** component count *)
  avg_degree : float;      (** interconnections per component (2·wires/n) *)
  timing_density : float;  (** directed timing budgets per component *)
  locality : float;        (** intra-cluster wire probability, in [0,1] *)
  clusters : int;          (** hidden clusters; 0 = auto (n/500, min 20) *)
  timing_slack : float * float;
                           (** planted budget slack (lo, hi), 60%/40% mix *)
  seed : int;
  rows : int;
  cols : int;
  capacity_slack : float;  (** uniform capacity = total/m · slack *)
}

val default : name:string -> n:int -> seed:int -> params
(** Degree 12, timing density 2, locality 0.8, auto clusters, 4×4
    grid, slack 1.08 — the Table-I regime, scaled. *)

val frontier : params list
(** [synth10k] (degree 16, density 3), [synth30k] (12, 2),
    [synth100k] (10, 1.5). *)

val names : string list

val find : string -> params option
(** Look up a frontier instance by name. *)

val wires_of : params -> int
val timing_of : params -> int
val clusters_of : params -> int
val generator_params : params -> Qbpart_netlist.Generator.params
val spec : params -> Circuits.spec

val build : ?pool:Qbpart_pool.Dompool.t -> params -> Circuits.instance
(** Deterministic for given [params]; [pool] parallelizes the CSR
    adjacency construction without changing any value.
    @raise Invalid_argument on nonsensical parameters. *)

val build_named : ?pool:Qbpart_pool.Dompool.t -> string -> Circuits.instance option
(** [build_named name] builds the frontier member named [name]. *)
