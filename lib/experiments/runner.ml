module Rng = Qbpart_netlist.Rng
module Topology = Qbpart_topology.Topology
module Constraints = Qbpart_timing.Constraints
module Check = Qbpart_timing.Check
module Assignment = Qbpart_partition.Assignment
module Evaluate = Qbpart_partition.Evaluate
module Validate = Qbpart_partition.Validate
module Initial = Qbpart_partition.Initial
module Problem = Qbpart_core.Problem
module Burkard = Qbpart_core.Burkard
module Gfm = Qbpart_baselines.Gfm
module Gkl = Qbpart_baselines.Gkl

type cell = { final : float; improvement_pct : float; cpu_seconds : float }
type row = { name : string; start : float; qbp : cell; gfm : cell; gkl : cell }

(* Feasibility-preserving perturbation of the reference witness: random
   single-component moves that keep C1 and C2, degrading wirelength so
   the tables have an honestly mediocre start. *)
let perturb_reference (inst : Circuits.instance) =
  let nl = inst.Circuits.netlist and topo = inst.Circuits.topology in
  let cons = inst.Circuits.constraints in
  let n = Qbpart_netlist.Netlist.n nl and m = Topology.m topo in
  let rng = Rng.create (inst.Circuits.spec.Circuits.seed + 7919) in
  let a = Assignment.copy inst.Circuits.reference in
  let loads = Assignment.loads nl ~m a in
  let moves = ref (4 * n) in
  let attempts = ref (40 * n) in
  while !moves > 0 && !attempts > 0 do
    decr attempts;
    let j = Rng.int rng n and i = Rng.int rng m in
    let s = Qbpart_netlist.Netlist.size nl j in
    if
      i <> a.(j)
      && loads.(i) +. s <= Topology.capacity topo i
      && Check.placement_ok cons topo ~j ~at:i ~where:(fun j' ->
             if j' = j then None else Some a.(j'))
    then begin
      loads.(a.(j)) <- loads.(a.(j)) -. s;
      loads.(i) <- loads.(i) +. s;
      a.(j) <- i;
      decr moves
    end
  done;
  a

let initial_solution (inst : Circuits.instance) =
  let nl = inst.Circuits.netlist and topo = inst.Circuits.topology in
  let cons = inst.Circuits.constraints in
  let problem = Problem.make ~constraints:cons nl topo in
  let config = { Burkard.Config.default with iterations = 30 } in
  let candidate =
    match Burkard.initial_feasible ~config problem with
    | Some a -> Some a
    | None ->
      Initial.greedy_feasible ~constraints:cons ~attempts:50
        (Rng.create (inst.Circuits.spec.Circuits.seed + 13))
        nl topo ()
  in
  let a = match candidate with Some a -> a | None -> perturb_reference inst in
  Validate.assert_feasible ~constraints:cons nl topo a;
  a

let timed f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let cell ~start ~final ~cpu_seconds =
  { final; improvement_pct = 100.0 *. (start -. final) /. start; cpu_seconds }

let run ?(with_timing = true) ?stage_deadline ?qbp_config ?gfm_config ?gkl_config ?initial
    inst =
  let nl = inst.Circuits.netlist and topo = inst.Circuits.topology in
  let constraints = if with_timing then Some inst.Circuits.constraints else None in
  let initial = match initial with Some a -> a | None -> initial_solution inst in
  let start = Evaluate.wirelength nl topo initial in
  (* Each solver gets its own budget so a slow QBP cannot starve the
     baselines of their table cells. *)
  let fresh_stop () =
    match stage_deadline with
    | None -> fun () -> false
    | Some secs -> Qbpart_engine.Deadline.should_stop (Qbpart_engine.Deadline.of_seconds secs)
  in
  let verify what a =
    match Validate.check ?constraints nl topo a with
    | [] -> ()
    | issue :: _ ->
      failwith
        (Format.asprintf "%s produced an infeasible result on %s: %a" what
           inst.Circuits.spec.Circuits.name Validate.pp_issue issue)
  in
  let problem = Circuits.problem ~with_timing inst in
  let qbp =
    let should_stop = fresh_stop () in
    let result, cpu =
      timed (fun () -> Burkard.solve ?config:qbp_config ~initial ~should_stop problem)
    in
    match result.Burkard.best_feasible with
    | Some (a, final) ->
      verify "QBP" a;
      cell ~start ~final ~cpu_seconds:cpu
    | None ->
      (* cannot happen: the initial solution itself is feasible and is
         considered by the solver *)
      failwith "QBP lost its feasible start"
  in
  let gfm =
    let should_stop = fresh_stop () in
    let result, cpu =
      timed (fun () -> Gfm.solve ?config:gfm_config ?constraints ~should_stop nl topo ~initial)
    in
    verify "GFM" result.Gfm.assignment;
    cell ~start ~final:result.Gfm.cost ~cpu_seconds:cpu
  in
  let gkl =
    let should_stop = fresh_stop () in
    let result, cpu =
      timed (fun () -> Gkl.solve ?config:gkl_config ?constraints ~should_stop nl topo ~initial)
    in
    verify "GKL" result.Gkl.assignment;
    cell ~start ~final:result.Gkl.cost ~cpu_seconds:cpu
  in
  { name = inst.Circuits.spec.Circuits.name; start; qbp; gfm; gkl }

let run_suite ?with_timing ?stage_deadline ?qbp_config instances =
  List.map (fun inst -> run ?with_timing ?stage_deadline ?qbp_config inst) instances

type robustness = {
  name : string;
  starts : int;
  from_initial : float;
  from_random : float list;
  feasible_runs : int;
}

let random_start_robustness ?(starts = 3) ?(with_timing = true) inst =
  let problem = Circuits.problem ~with_timing inst in
  let initial = initial_solution inst in
  let solve_from init =
    let r = Burkard.solve ~initial:init problem in
    Option.map snd r.Burkard.best_feasible
  in
  let from_initial =
    match solve_from initial with
    | Some c -> c
    | None -> failwith "robustness: QBP lost its feasible start"
  in
  let n = Qbpart_netlist.Netlist.n inst.Circuits.netlist in
  let m = Topology.m inst.Circuits.topology in
  let outcomes =
    List.init starts (fun k ->
        let rng = Rng.create ((inst.Circuits.spec.Circuits.seed * 31) + k) in
        solve_from (Assignment.random rng ~n ~m))
  in
  let from_random = List.filter_map Fun.id outcomes in
  {
    name = inst.Circuits.spec.Circuits.name;
    starts;
    from_initial;
    from_random;
    feasible_runs = List.length from_random;
  }
