(** Static timing analysis over a component-level DAG.

    The paper states that timing constraints "are driven by system
    cycle time and can be derived from the delay equations and
    intrinsic delay in combinational circuit components" (section 1).
    This module performs that derivation: given a directed acyclic
    signal-flow graph whose nodes are components with intrinsic delays,
    it computes longest paths and turns the slack of each edge into a
    maximum allowed routing delay — a {!Constraints.t} usable as
    {m D_C}.

    Budgeting scheme: for edge {m u→v}, let {m L(e)} be the delay of
    the longest register-to-register path through {m e} (intrinsic
    delays only) and {m k(e)} the number of edges on that path.  The
    path slack {m T_{cycle} − L(e)} is divided equally among the
    path's edges: {m budget(e) = (T_{cycle} − L(e)) / k(e)}.  This is
    the classic zero-slack allocation restricted to a single pass; it
    guarantees that if every edge meets its budget, every path meets
    the cycle time. *)

type t

val make : intrinsic:float array -> edges:(int * int) list -> t
(** [make ~intrinsic ~edges] builds the timing graph; [intrinsic.(j)]
    is component [j]'s combinational delay (>= 0).  Duplicate edges
    are merged.
    @raise Invalid_argument on self-loops, out-of-range endpoints,
    negative delays, or if the graph has a cycle. *)

val of_netlist :
  Qbpart_netlist.Netlist.t -> intrinsic:float array -> order:int array -> t
(** Orient every wire of the netlist along [order] (a permutation of
    component ids): the endpoint appearing earlier drives the later
    one.  This turns an undirected netlist into a plausible
    combinational signal flow for experimentation. *)

val n : t -> int
val edge_count : t -> int

val arrival : t -> float array
(** [arrival.(j)]: delay of the longest intrinsic-delay path ending at
    (and including) [j]. *)

val critical_path : t -> float
(** Minimum feasible cycle time with ideal (zero-delay) routing. *)

val budgets : t -> cycle_time:float -> (Constraints.t, string) result
(** Per-edge routing budgets as described above.  [Error] explains the
    failure if [cycle_time < critical_path] (negative slack: no
    routing budget can make the circuit meet timing). *)

val slacks : t -> cycle_time:float -> (int * int * float) list
(** Per-edge path slacks (before division by path length); may be
    negative. *)
