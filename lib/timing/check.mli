(** Timing-constraint checking: the paper's C2.

    An assignment {m A} satisfies C2 iff
    {m D(A(j_1), A(j_2)) ≤ D_C(j_1, j_2)} for every stored budget.
    Assignments are plain [int array]s mapping component id to
    partition index (the same representation used throughout the
    repository). *)

type violation = {
  j1 : int;
  j2 : int;
  delay : float;  (** {m D(A(j_1), A(j_2))} *)
  budget : float; (** {m D_C(j_1, j_2)} *)
}

val violations :
  Constraints.t -> Qbpart_topology.Topology.t -> assignment:int array -> violation list
(** All violated directed constraints, in iteration order. *)

val count :
  Constraints.t -> Qbpart_topology.Topology.t -> assignment:int array -> int
(** Number of violated directed constraints (cheaper than building the
    list). *)

val feasible :
  Constraints.t -> Qbpart_topology.Topology.t -> assignment:int array -> bool

val worst_slack :
  Constraints.t -> Qbpart_topology.Topology.t -> assignment:int array -> float
(** {m min (D_C - D)} over stored constraints; {m +∞} when there are
    none.  Negative iff infeasible. *)

val placement_ok :
  Constraints.t ->
  Qbpart_topology.Topology.t ->
  j:int ->
  at:int ->
  where:(int -> int option) ->
  bool
(** [placement_ok c topo ~j ~at ~where] checks every constraint
    involving [j] against placing [j] at partition [at], where
    [where j'] gives the partition of partner [j'] ([None] = not yet
    placed, constraint ignored).  This is the move-legality primitive
    of the GFM/GKL baselines ("moves are allowed to take place only
    when they do not introduce timing violations"). *)
