module Sm = Qbpart_netlist.Sparse_matrix

type partner = { other : int; budget_out : float; budget_in : float }

(* Struct-of-arrays CSR over constraint partners: component [j]'s
   partners are [pother.(poff.(j) .. poff.(j+1)-1)], sorted ascending,
   with both directed budgets in unboxed float arrays. *)
type csr = {
  poff : int array;    (* row offsets, length n+1 *)
  pother : int array;  (* partner ids, per-row ascending *)
  pbout : float array; (* D_C(j, other), +inf if unconstrained *)
  pbin : float array;  (* D_C(other, j), +inf if unconstrained *)
}

type t = {
  dc : Sm.t; (* directed budgets, default +inf *)
  mutable csr : csr option; (* invalidated on add *)
  mutable index : partner array array option; (* boxed compat view, lazy *)
}

let create ~n =
  if n < 0 then invalid_arg "Constraints.create: negative n";
  { dc = Sm.create ~default:infinity ~rows:n ~cols:n (); csr = None; index = None }

let n t = Sm.rows t.dc

let add t j1 j2 budget =
  if j1 = j2 then invalid_arg "Constraints.add: self-pair";
  if Float.is_nan budget || budget < 0.0 then
    invalid_arg (Printf.sprintf "Constraints.add %d->%d: bad budget %g" j1 j2 budget);
  if budget < Sm.get t.dc j1 j2 then begin
    Sm.set t.dc j1 j2 budget;
    t.csr <- None;
    t.index <- None
  end

let add_sym t j1 j2 budget =
  add t j1 j2 budget;
  add t j2 j1 budget

let budget t j1 j2 = Sm.get t.dc j1 j2
let mem t j1 j2 = Sm.mem t.dc j1 j2
let count t = Sm.nnz t.dc

let iter t f = Sm.iter t.dc f

let fold t ~init ~f = Sm.fold t.dc ~init ~f

let pair_count t =
  let seen = Hashtbl.create (count t) in
  iter t (fun j1 j2 _ ->
      let key = if j1 < j2 then (j1, j2) else (j2, j1) in
      Hashtbl.replace seen key ());
  Hashtbl.length seen

(* Counting pass + prefix sum + fill + per-row sort-and-merge.  Each
   directed budget j1->j2 contributes a slot to both endpoints; rows
   are then sorted by partner id and slots naming the same partner
   (one per direction) are merged with Float.min — the same result,
   in the same ascending-partner order, as the old per-component
   hashtable build, without allocating n hashtables. *)
let build_csr t =
  let n = n t in
  let cnt = Array.make (n + 1) 0 in
  iter t (fun j1 j2 _ ->
      cnt.(j1 + 1) <- cnt.(j1 + 1) + 1;
      cnt.(j2 + 1) <- cnt.(j2 + 1) + 1);
  for j = 1 to n do
    cnt.(j) <- cnt.(j) + cnt.(j - 1)
  done;
  let slots = cnt.(n) in
  let raw_other = Array.make slots 0 in
  let raw_out = Array.make slots infinity in
  let raw_in = Array.make slots infinity in
  let cur = Array.sub cnt 0 n in
  iter t (fun j1 j2 b ->
      let k1 = cur.(j1) in
      raw_other.(k1) <- j2;
      raw_out.(k1) <- b;
      raw_in.(k1) <- infinity;
      cur.(j1) <- k1 + 1;
      let k2 = cur.(j2) in
      raw_other.(k2) <- j1;
      raw_out.(k2) <- infinity;
      raw_in.(k2) <- b;
      cur.(j2) <- k2 + 1);
  (* Sort each row in place by partner id (insertion sort: rows are
     the paper's sparse critical-constraint sets, typically short). *)
  for j = 0 to n - 1 do
    let lo = cnt.(j) and hi = cur.(j) in
    for k = lo + 1 to hi - 1 do
      let o = raw_other.(k) and bo = raw_out.(k) and bi = raw_in.(k) in
      let p = ref (k - 1) in
      while !p >= lo && raw_other.(!p) > o do
        raw_other.(!p + 1) <- raw_other.(!p);
        raw_out.(!p + 1) <- raw_out.(!p);
        raw_in.(!p + 1) <- raw_in.(!p);
        decr p
      done;
      raw_other.(!p + 1) <- o;
      raw_out.(!p + 1) <- bo;
      raw_in.(!p + 1) <- bi
    done
  done;
  (* Merge duplicate partners (both directions present) and compact. *)
  let poff = Array.make (n + 1) 0 in
  let w = ref 0 in
  for j = 0 to n - 1 do
    poff.(j) <- !w;
    let lo = cnt.(j) and hi = cur.(j) in
    let k = ref lo in
    while !k < hi do
      let o = raw_other.(!k) in
      let bo = ref raw_out.(!k) and bi = ref raw_in.(!k) in
      incr k;
      while !k < hi && raw_other.(!k) = o do
        bo := Float.min !bo raw_out.(!k);
        bi := Float.min !bi raw_in.(!k);
        incr k
      done;
      raw_other.(!w) <- o;
      raw_out.(!w) <- !bo;
      raw_in.(!w) <- !bi;
      incr w
    done
  done;
  poff.(n) <- !w;
  {
    poff;
    pother = Array.sub raw_other 0 !w;
    pbout = Array.sub raw_out 0 !w;
    pbin = Array.sub raw_in 0 !w;
  }

let csr t =
  match t.csr with
  | Some csr -> csr
  | None ->
    let c = build_csr t in
    t.csr <- Some c;
    c

let prebuild t = ignore (csr t : csr)

let partner_offsets t = (csr t).poff
let partner_ids t = (csr t).pother
let partner_budget_out t = (csr t).pbout
let partner_budget_in t = (csr t).pbin

let partners t j =
  let idx =
    match t.index with
    | Some idx -> idx
    | None ->
      let c = csr t in
      let idx =
        Array.init (n t) (fun j ->
            let lo = c.poff.(j) in
            Array.init
              (c.poff.(j + 1) - lo)
              (fun k ->
                {
                  other = c.pother.(lo + k);
                  budget_out = c.pbout.(lo + k);
                  budget_in = c.pbin.(lo + k);
                }))
      in
      t.index <- Some idx;
      idx
  in
  idx.(j)

let partner_degree t j =
  let poff = (csr t).poff in
  poff.(j + 1) - poff.(j)

let max_partner_degree t =
  let poff = (csr t).poff in
  let best = ref 0 in
  for j = 0 to n t - 1 do
    best := max !best (poff.(j + 1) - poff.(j))
  done;
  !best

let copy t = { dc = Sm.copy t.dc; csr = None; index = None }
let empty t = count t = 0

let pp ppf t =
  Format.fprintf ppf "constraints<%d directed budgets over %d pairs, %d components>"
    (count t) (pair_count t) (n t)
