module Sm = Qbpart_netlist.Sparse_matrix

type partner = { other : int; budget_out : float; budget_in : float }

type t = {
  dc : Sm.t; (* directed budgets, default +inf *)
  mutable index : partner array array option; (* invalidated on add *)
}

let create ~n =
  if n < 0 then invalid_arg "Constraints.create: negative n";
  { dc = Sm.create ~default:infinity ~rows:n ~cols:n (); index = None }

let n t = Sm.rows t.dc

let add t j1 j2 budget =
  if j1 = j2 then invalid_arg "Constraints.add: self-pair";
  if Float.is_nan budget || budget < 0.0 then
    invalid_arg (Printf.sprintf "Constraints.add %d->%d: bad budget %g" j1 j2 budget);
  if budget < Sm.get t.dc j1 j2 then begin
    Sm.set t.dc j1 j2 budget;
    t.index <- None
  end

let add_sym t j1 j2 budget =
  add t j1 j2 budget;
  add t j2 j1 budget

let budget t j1 j2 = Sm.get t.dc j1 j2
let mem t j1 j2 = Sm.mem t.dc j1 j2
let count t = Sm.nnz t.dc

let iter t f = Sm.iter t.dc f

let fold t ~init ~f = Sm.fold t.dc ~init ~f

let pair_count t =
  let seen = Hashtbl.create (count t) in
  iter t (fun j1 j2 _ ->
      let key = if j1 < j2 then (j1, j2) else (j2, j1) in
      Hashtbl.replace seen key ());
  Hashtbl.length seen

let build_index t =
  let n = n t in
  let accum : (int, float * float) Hashtbl.t array = Array.init n (fun _ -> Hashtbl.create 4) in
  let update j other ~out ~inc =
    let prev_out, prev_in =
      match Hashtbl.find_opt accum.(j) other with
      | Some p -> p
      | None -> (infinity, infinity)
    in
    Hashtbl.replace accum.(j) other (Float.min prev_out out, Float.min prev_in inc)
  in
  iter t (fun j1 j2 b ->
      update j1 j2 ~out:b ~inc:infinity;
      update j2 j1 ~out:infinity ~inc:b);
  Array.map
    (fun h ->
      let lst =
        Hashtbl.fold
          (fun other (budget_out, budget_in) acc -> { other; budget_out; budget_in } :: acc)
          h []
      in
      let arr = Array.of_list lst in
      Array.sort (fun a b -> Int.compare a.other b.other) arr;
      arr)
    accum

let partners t j =
  let idx =
    match t.index with
    | Some idx -> idx
    | None ->
      let idx = build_index t in
      t.index <- Some idx;
      idx
  in
  idx.(j)

let max_partner_degree t =
  let best = ref 0 in
  for j = 0 to n t - 1 do
    best := max !best (Array.length (partners t j))
  done;
  !best

let copy t = { dc = Sm.copy t.dc; index = None }
let empty t = count t = 0

let pp ppf t =
  Format.fprintf ppf "constraints<%d directed budgets over %d pairs, %d components>"
    (count t) (pair_count t) (n t)
