(* Longest-path analysis with two DPs per direction: path delay (for
   the worst slack through an edge) and path edge-count (for the
   division factor).  Using max-delay and max-edge-count separately
   gives budget(e) = (T - Lmax(e)) / Kmax(e), a lower bound on
   (T - L(p))/k(p) for every path p through e; summing the bound along
   any path shows the resulting budgets are safe: if every edge meets
   its budget, every path meets the cycle time. *)

type t = {
  intrinsic : float array;
  edges : (int * int) array; (* deduplicated, sorted *)
  succ : int array array;
  pred : int array array;
  topo_order : int array; (* topological order of node ids *)
}

let build_order n succ =
  let indegree = Array.make n 0 in
  Array.iter (fun outs -> Array.iter (fun v -> indegree.(v) <- indegree.(v) + 1) outs) succ;
  let queue = Queue.create () in
  Array.iteri (fun j d -> if d = 0 then Queue.add j queue) indegree;
  let order = Array.make n (-1) in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order.(!k) <- u;
    incr k;
    Array.iter
      (fun v ->
        indegree.(v) <- indegree.(v) - 1;
        if indegree.(v) = 0 then Queue.add v queue)
      succ.(u)
  done;
  if !k <> n then invalid_arg "Sta.make: signal-flow graph has a cycle";
  order

let make ~intrinsic ~edges =
  let n = Array.length intrinsic in
  Array.iteri
    (fun j d ->
      if d < 0.0 || Float.is_nan d then
        invalid_arg (Printf.sprintf "Sta.make: intrinsic delay of %d is %g" j d))
    intrinsic;
  let seen = Hashtbl.create (List.length edges) in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg (Printf.sprintf "Sta.make: edge %d->%d out of range" u v);
      if u = v then invalid_arg (Printf.sprintf "Sta.make: self-loop on %d" u);
      Hashtbl.replace seen (u, v) ())
    edges;
  let edges = Hashtbl.fold (fun e () acc -> e :: acc) seen [] |> Array.of_list in
  Array.sort compare edges;
  let out_deg = Array.make n 0 and in_deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      out_deg.(u) <- out_deg.(u) + 1;
      in_deg.(v) <- in_deg.(v) + 1)
    edges;
  let succ = Array.init n (fun j -> Array.make out_deg.(j) 0) in
  let pred = Array.init n (fun j -> Array.make in_deg.(j) 0) in
  let fo = Array.make n 0 and fi = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      succ.(u).(fo.(u)) <- v;
      fo.(u) <- fo.(u) + 1;
      pred.(v).(fi.(v)) <- u;
      fi.(v) <- fi.(v) + 1)
    edges;
  let topo_order = build_order n succ in
  { intrinsic = Array.copy intrinsic; edges; succ; pred; topo_order }

let of_netlist nl ~intrinsic ~order =
  let n = Qbpart_netlist.Netlist.n nl in
  if Array.length order <> n then invalid_arg "Sta.of_netlist: order length mismatch";
  let rank = Array.make n (-1) in
  Array.iteri (fun pos j -> rank.(j) <- pos) order;
  Array.iteri
    (fun j r -> if r < 0 then invalid_arg (Printf.sprintf "Sta.of_netlist: %d missing from order" j))
    rank;
  let edges =
    Qbpart_netlist.Netlist.wires nl |> Array.to_list
    |> List.map (fun w ->
           let u = Qbpart_netlist.Wire.u w and v = Qbpart_netlist.Wire.v w in
           if rank.(u) < rank.(v) then (u, v) else (v, u))
  in
  make ~intrinsic ~edges

let n t = Array.length t.intrinsic
let edge_count t = Array.length t.edges

(* Forward DP in topological order; backward DP in reverse order.
   [delay] includes the node's own intrinsic delay; [hops] is the max
   number of edges on any path ending (resp. starting) at the node. *)
let forward t =
  let n = n t in
  let delay = Array.make n 0.0 and hops = Array.make n 0 in
  Array.iter
    (fun j ->
      let best_d = ref 0.0 and best_k = ref 0 in
      Array.iter
        (fun p ->
          if delay.(p) > !best_d then best_d := delay.(p);
          if hops.(p) + 1 > !best_k then best_k := hops.(p) + 1)
        t.pred.(j);
      delay.(j) <- t.intrinsic.(j) +. !best_d;
      hops.(j) <- !best_k)
    t.topo_order;
  (delay, hops)

let backward t =
  let n = n t in
  let delay = Array.make n 0.0 and hops = Array.make n 0 in
  for k = n - 1 downto 0 do
    let j = t.topo_order.(k) in
    let best_d = ref 0.0 and best_k = ref 0 in
    Array.iter
      (fun s ->
        if delay.(s) > !best_d then best_d := delay.(s);
        if hops.(s) + 1 > !best_k then best_k := hops.(s) + 1)
      t.succ.(j);
    delay.(j) <- t.intrinsic.(j) +. !best_d;
    hops.(j) <- !best_k
  done;
  (delay, hops)

let arrival t = fst (forward t)

let critical_path t =
  let delay, _ = forward t in
  Array.fold_left Float.max 0.0 delay

let edge_slack_and_hops t ~cycle_time =
  let fd, fk = forward t in
  let bd, bk = backward t in
  Array.map
    (fun (u, v) ->
      let path_delay = fd.(u) +. bd.(v) in
      let path_hops = fk.(u) + bk.(v) + 1 in
      (u, v, cycle_time -. path_delay, path_hops))
    t.edges

let slacks t ~cycle_time =
  edge_slack_and_hops t ~cycle_time
  |> Array.to_list
  |> List.map (fun (u, v, slack, _) -> (u, v, slack))

let budgets t ~cycle_time =
  let cp = critical_path t in
  if cycle_time < cp then
    Error
      (Printf.sprintf
         "cycle time %g is below the intrinsic critical path %g: no routing budget exists"
         cycle_time cp)
  else begin
    let c = Constraints.create ~n:(n t) in
    Array.iter
      (fun (u, v, slack, hops) -> Constraints.add c u v (slack /. float_of_int hops))
      (edge_slack_and_hops t ~cycle_time);
    Ok c
  end
