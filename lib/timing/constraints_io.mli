(** Textual format for timing-budget files (the {m D_C} matrix).

    Line-oriented, referencing components by name so the file pairs
    with a netlist in {!Qbpart_netlist.Parser}'s format:
    {v
    # comment
    budget <from> <to> <max-delay>      # directed
    budget_sym <a> <b> <max-delay>      # both directions
    v}
    Duplicate lines keep the tighter budget, mirroring
    {!Constraints.add}. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val parse_string : Qbpart_netlist.Netlist.t -> string -> (Constraints.t, error) result
(** Budgets are resolved against the given netlist's component names. *)

val parse_file : Qbpart_netlist.Netlist.t -> string -> (Constraints.t, error) result
(** @raise Sys_error if the file cannot be opened. *)

val to_string : Qbpart_netlist.Netlist.t -> Constraints.t -> string
(** Inverse of {!parse_string}: one [budget] line per stored directed
    entry, in iteration order. *)

val to_file : Qbpart_netlist.Netlist.t -> Constraints.t -> string -> unit
