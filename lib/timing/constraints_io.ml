module Netlist = Qbpart_netlist.Netlist

type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message
let error_to_string e = Format.asprintf "%a" pp_error e

exception Fail of error

let fail line fmt = Printf.ksprintf (fun message -> raise (Fail { line; message })) fmt

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let strip_comment raw =
  let raw =
    match String.index_opt raw '#' with Some i -> String.sub raw 0 i | None -> raw
  in
  match String.index_opt raw ';' with Some i -> String.sub raw 0 i | None -> raw

let parse_string nl source =
  let cons = Constraints.create ~n:(Netlist.n nl) in
  let lookup ln name =
    match Netlist.find_by_name nl name with
    | Some id -> id
    | None -> fail ln "unknown component %S" name
  in
  let budget_of ln s =
    match float_of_string_opt s with
    | Some x when x >= 0.0 && not (Float.is_nan x) -> x
    | _ -> fail ln "invalid budget %S" s
  in
  match
    List.iteri
      (fun idx raw ->
        let ln = idx + 1 in
        match tokens (strip_comment raw) with
        | [] -> ()
        | [ "budget"; f; t; b ] ->
          let j1 = lookup ln f and j2 = lookup ln t in
          if j1 = j2 then fail ln "budget on a component with itself: %S" f;
          Constraints.add cons j1 j2 (budget_of ln b)
        | [ "budget_sym"; a; b; x ] ->
          let j1 = lookup ln a and j2 = lookup ln b in
          if j1 = j2 then fail ln "budget on a component with itself: %S" a;
          Constraints.add_sym cons j1 j2 (budget_of ln x)
        | cmd :: _ -> fail ln "unknown declaration %S (budget | budget_sym)" cmd)
      (String.split_on_char '\n' source)
  with
  | () -> Ok cons
  | exception Fail e -> Error e

let parse_file nl path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      parse_string nl contents)

let to_string nl cons =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# qbpart timing budgets\n";
  Constraints.iter cons (fun j1 j2 b ->
      Buffer.add_string buf
        (Printf.sprintf "budget %s %s %.17g\n"
           (Qbpart_netlist.Component.name (Netlist.component nl j1))
           (Qbpart_netlist.Component.name (Netlist.component nl j2))
           b));
  Buffer.contents buf

let to_file nl cons path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc (to_string nl cons))
