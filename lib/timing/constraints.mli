(** Timing constraints: the sparse matrix {m D_C}.

    {m D_C(j_1, j_2)} is the maximum signal-routing delay allowed from
    component {m j_1} to component {m j_2} (paper section 2.1, input
    I.4).  Entries are directed; absent entries read as {m +∞} — the
    paper notes that most of the {m N²} potential constraints involve
    pairs with "no actual electrical connection or cycle time
    constraints between them" and are discarded, so only the critical
    constraints are stored.

    The structure is mutable during construction; solvers access it
    through {!partners}, a per-component index over both incoming and
    outgoing budgets that is (re)built lazily. *)

type t

type partner = {
  other : int;       (** the other component *)
  budget_out : float; (** {m D_C(j, other)}; +∞ if unconstrained *)
  budget_in : float;  (** {m D_C(other, j)}; +∞ if unconstrained *)
}

val create : n:int -> t
(** No constraints on [n] components. *)

val n : t -> int

val add : t -> int -> int -> float -> unit
(** [add t j1 j2 budget] constrains the routing delay from [j1] to
    [j2].  If a budget already exists the tighter (smaller) one is
    kept.
    @raise Invalid_argument on self-pairs, out-of-range ids, negative
    or NaN budgets.  Infinite budgets are ignored (no constraint). *)

val add_sym : t -> int -> int -> float -> unit
(** Constrain both directions with the same budget. *)

val budget : t -> int -> int -> float
(** [budget t j1 j2] is {m D_C(j_1,j_2)}, {m +∞} when absent. *)

val mem : t -> int -> int -> bool
(** Is there a finite directed budget from [j1] to [j2]? *)

val count : t -> int
(** Number of finite directed budgets — the paper's Table I "# of
    Timing Constraints" counts these critical constraints. *)

val pair_count : t -> int
(** Number of distinct unordered constrained pairs. *)

val iter : t -> (int -> int -> float -> unit) -> unit
(** Iterate over finite directed budgets. *)

val fold : t -> init:'a -> f:('a -> int -> int -> float -> 'a) -> 'a

(** {2 Flat partner CSR}

    The per-component partner index is stored struct-of-arrays:
    component [j]'s partners are
    [partner_ids.(partner_offsets.(j) .. partner_offsets.(j+1) - 1)],
    ascending, with both directed budgets in unboxed float arrays.
    The arrays are shared with [t] and must not be mutated; they are
    rebuilt lazily after any {!add}.  Hot loops should grab them once
    and iterate by index. *)

val prebuild : t -> unit
(** Force the lazy partner index.  Call once before sharing [t]
    read-only across domains so no two domains race to build it. *)

val partner_offsets : t -> int array
(** Row offsets, length [n + 1]. *)

val partner_ids : t -> int array
(** Partner ids, per-row ascending. *)

val partner_budget_out : t -> float array
(** {m D_C(j, other)} aligned with {!partner_ids}; {m +∞} if
    unconstrained. *)

val partner_budget_in : t -> float array
(** {m D_C(other, j)} aligned with {!partner_ids}; {m +∞} if
    unconstrained. *)

val partners : t -> int -> partner array
(** All components sharing a constraint with [j], with both directed
    budgets, ascending by id.  Boxed compatibility view over the flat
    CSR; the returned array is shared and must not be mutated, and is
    rebuilt automatically after any {!add}. *)

val partner_degree : t -> int -> int
(** Number of constraint partners of [j]. *)

val max_partner_degree : t -> int
(** Largest number of constraint partners of any component. *)

val copy : t -> t
val empty : t -> bool
val pp : Format.formatter -> t -> unit
