module Topology = Qbpart_topology.Topology

type violation = { j1 : int; j2 : int; delay : float; budget : float }

let violations c topo ~assignment =
  Constraints.fold c ~init:[] ~f:(fun acc j1 j2 budget ->
      let delay = Topology.d topo assignment.(j1) assignment.(j2) in
      if delay > budget then { j1; j2; delay; budget } :: acc else acc)
  |> List.rev

let count c topo ~assignment =
  Constraints.fold c ~init:0 ~f:(fun acc j1 j2 budget ->
      if Topology.d topo assignment.(j1) assignment.(j2) > budget then acc + 1 else acc)

let feasible c topo ~assignment = count c topo ~assignment = 0

let worst_slack c topo ~assignment =
  Constraints.fold c ~init:infinity ~f:(fun acc j1 j2 budget ->
      Float.min acc (budget -. Topology.d topo assignment.(j1) assignment.(j2)))

let placement_ok c topo ~j ~at ~where =
  let ps = Constraints.partners c j in
  let ok = ref true in
  let k = Array.length ps in
  let i = ref 0 in
  while !ok && !i < k do
    let p = ps.(!i) in
    (match where p.Constraints.other with
    | None -> ()
    | Some at' ->
      if Topology.d topo at at' > p.Constraints.budget_out then ok := false
      else if Topology.d topo at' at > p.Constraints.budget_in then ok := false);
    incr i
  done;
  !ok
