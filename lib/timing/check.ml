module Topology = Qbpart_topology.Topology

type violation = { j1 : int; j2 : int; delay : float; budget : float }

let violations c topo ~assignment =
  Constraints.fold c ~init:[] ~f:(fun acc j1 j2 budget ->
      let delay = Topology.d topo assignment.(j1) assignment.(j2) in
      if delay > budget then { j1; j2; delay; budget } :: acc else acc)
  |> List.rev

let count c topo ~assignment =
  Constraints.fold c ~init:0 ~f:(fun acc j1 j2 budget ->
      if Topology.d topo assignment.(j1) assignment.(j2) > budget then acc + 1 else acc)

let feasible c topo ~assignment = count c topo ~assignment = 0

let worst_slack c topo ~assignment =
  Constraints.fold c ~init:infinity ~f:(fun acc j1 j2 budget ->
      Float.min acc (budget -. Topology.d topo assignment.(j1) assignment.(j2)))

let placement_ok c topo ~j ~at ~where =
  let poff = Constraints.partner_offsets c in
  let pids = Constraints.partner_ids c in
  let pbout = Constraints.partner_budget_out c in
  let pbin = Constraints.partner_budget_in c in
  let ok = ref true in
  let k = ref poff.(j) in
  let hi = poff.(j + 1) in
  while !ok && !k < hi do
    (match where pids.(!k) with
    | None -> ()
    | Some at' ->
      if Topology.d topo at at' > pbout.(!k) then ok := false
      else if Topology.d topo at' at > pbin.(!k) then ok := false);
    incr k
  done;
  !ok
