(** A bounded fork-join pool of worker domains for intra-solve
    parallelism, shared between the population/portfolio schedulers and
    the kernels below them.

    The design contract is determinism: [parallel_for] hands out chunk
    indices, every chunk writes only state no other chunk touches, and
    the caller observes all writes once the call returns.  Because a
    chunk's {e result} never depends on which domain ran it or in what
    order chunks were claimed, a computation built on this pool is
    bit-identical for every pool size — [create ~domains:1] spawns
    nothing and degenerates to the plain sequential loop.

    A pool has a single orchestrating domain: [parallel_for]/[run_list]
    must not be called concurrently from two domains, and tasks must
    not re-enter the pool (no nested batches).  Both schedulers obey
    this by giving each outer start its own pool. *)

type t

val create : domains:int -> t
(** [create ~domains] builds a pool of [domains] workers including the
    caller, spawning [domains - 1] helper domains that persist until
    [shutdown].  [domains < 1] is an [Invalid_argument]. *)

val sequential : t
(** The shared size-1 pool: no domains, no locks taken, every batch
    runs inline in the caller.  [shutdown] on it is a no-op, so it is
    safe as a default everywhere. *)

val size : t -> int
(** Worker count including the calling domain. *)

val parallel_for : t -> chunks:int -> (int -> unit) -> unit
(** [parallel_for t ~chunks f] runs [f 0 .. f (chunks - 1)], fanned
    across the pool's workers with the caller participating, and
    returns once every chunk finished.  The first exception any chunk
    raised is re-raised in the caller after the batch completes; the
    remaining chunks still run. *)

val run_list : t -> (unit -> unit) list -> unit
(** [run_list t tasks] runs independent thunks as one batch —
    [parallel_for] over the list. *)

val shutdown : t -> unit
(** Join the helper domains.  Idempotent; the pool must be idle. *)
