(* Fork-join over persistent domains.  Spawning a domain costs
   milliseconds — far more than one eta recompute — so the workers are
   spawned once and parked on a condition variable between batches.

   Batch lifecycle: the orchestrator waits until every helper is parked
   (so a slow helper from the previous batch can never claim a chunk of
   the next one with a stale closure), installs (task, chunks), resets
   the claim and completion counters, bumps the batch stamp and wakes
   the helpers.  Everyone — caller included — then claims chunk indices
   from one atomic counter until they run out; the worker that finishes
   the last chunk signals completion.  The atomic counters plus the
   completion mutex give the caller a happens-before edge over every
   chunk's writes, so results written into disjoint slices are safe to
   read as soon as [parallel_for] returns. *)

type t = {
  size : int;
  lock : Mutex.t;
  work_ready : Condition.t;  (* a new batch is installed *)
  work_done : Condition.t;   (* the last chunk of a batch finished *)
  all_idle : Condition.t;    (* a helper parked itself *)
  mutable batch : int;
  mutable task : (int -> unit) option;
  mutable chunks : int;
  mutable idle_workers : int;
  mutable failure : exn option;
  mutable stop : bool;
  next : int Atomic.t;       (* next chunk index to claim *)
  remaining : int Atomic.t;  (* chunks not yet finished *)
  mutable workers : unit Domain.t array;
}

let size t = t.size

let drain t f chunks =
  let continue = ref true in
  while !continue do
    let c = Atomic.fetch_and_add t.next 1 in
    if c >= chunks then continue := false
    else begin
      (try f c
       with e ->
         Mutex.lock t.lock;
         if t.failure = None then t.failure <- Some e;
         Mutex.unlock t.lock);
      if Atomic.fetch_and_add t.remaining (-1) = 1 then begin
        Mutex.lock t.lock;
        Condition.broadcast t.work_done;
        Mutex.unlock t.lock
      end
    end
  done

let worker t () =
  let seen = ref 0 in
  let running = ref true in
  Mutex.lock t.lock;
  while !running do
    t.idle_workers <- t.idle_workers + 1;
    Condition.broadcast t.all_idle;
    while (not t.stop) && t.batch = !seen do
      Condition.wait t.work_ready t.lock
    done;
    t.idle_workers <- t.idle_workers - 1;
    if t.stop then running := false
    else begin
      seen := t.batch;
      let f = match t.task with Some f -> f | None -> fun _ -> () in
      let chunks = t.chunks in
      Mutex.unlock t.lock;
      drain t f chunks;
      Mutex.lock t.lock
    end
  done;
  Mutex.unlock t.lock

let create ~domains =
  if domains < 1 then invalid_arg "Dompool.create: domains must be >= 1";
  let t =
    {
      size = domains;
      lock = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      all_idle = Condition.create ();
      batch = 0;
      task = None;
      chunks = 0;
      idle_workers = 0;
      failure = None;
      stop = false;
      next = Atomic.make 0;
      remaining = Atomic.make 0;
      workers = [||];
    }
  in
  t.workers <- Array.init (domains - 1) (fun _ -> Domain.spawn (worker t));
  t

let sequential = create ~domains:1

let parallel_for t ~chunks f =
  if chunks < 0 then invalid_arg "Dompool.parallel_for: negative chunks";
  if chunks > 0 then
    if t.size = 1 || chunks = 1 then
      for c = 0 to chunks - 1 do
        f c
      done
    else begin
      Mutex.lock t.lock;
      if t.stop then begin
        Mutex.unlock t.lock;
        invalid_arg "Dompool.parallel_for: pool is shut down"
      end;
      while t.idle_workers < t.size - 1 do
        Condition.wait t.all_idle t.lock
      done;
      t.task <- Some f;
      t.chunks <- chunks;
      t.failure <- None;
      Atomic.set t.next 0;
      Atomic.set t.remaining chunks;
      t.batch <- t.batch + 1;
      Condition.broadcast t.work_ready;
      Mutex.unlock t.lock;
      drain t f chunks;
      Mutex.lock t.lock;
      while Atomic.get t.remaining > 0 do
        Condition.wait t.work_done t.lock
      done;
      t.task <- None;
      let failure = t.failure in
      t.failure <- None;
      Mutex.unlock t.lock;
      Option.iter raise failure
    end

let run_list t tasks =
  let tasks = Array.of_list tasks in
  parallel_for t ~chunks:(Array.length tasks) (fun i -> tasks.(i) ())

let shutdown t =
  if t.size > 1 then begin
    Mutex.lock t.lock;
    let fresh = not t.stop in
    if fresh then begin
      t.stop <- true;
      Condition.broadcast t.work_ready
    end;
    Mutex.unlock t.lock;
    if fresh then Array.iter Domain.join t.workers
  end
