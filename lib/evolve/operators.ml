module Netlist = Qbpart_netlist.Netlist
module Rng = Qbpart_netlist.Rng
module Topology = Qbpart_topology.Topology
module Assignment = Qbpart_partition.Assignment
module Problem = Qbpart_core.Problem
module Qmatrix = Qbpart_core.Qmatrix
module Repair = Qbpart_core.Repair

let crossover rng ~m p1 p2 =
  let n = Array.length p1 in
  if Array.length p2 <> n then invalid_arg "Operators.crossover: length mismatch";
  let p2 = Diversity.align ~m ~reference:p1 p2 in
  Array.init n (fun j -> if Rng.bool rng then p1.(j) else p2.(j))

let path_relink problem ~source ~target =
  let problem = Problem.normalize problem in
  let m = Problem.m problem in
  let n = Problem.n problem in
  if Array.length source <> n || Array.length target <> n then
    invalid_arg "Operators.path_relink: length mismatch";
  let target = Diversity.align ~m ~reference:source target in
  let a = Array.copy source in
  let diff = ref [] in
  for j = n - 1 downto 0 do
    if a.(j) <> target.(j) then diff := j :: !diff
  done;
  let best = ref None in
  let consider () =
    if Problem.feasible problem a then begin
      let c = Problem.objective problem a in
      match !best with
      | Some (_, c') when c' <= c -> ()
      | _ -> best := Some (Array.copy a, c)
    end
  in
  (* the walk visits |diff| - 1 strict intermediates; the endpoints are
     the parents themselves and stay the pool's business *)
  let steps = List.length !diff - 1 in
  for _ = 1 to steps do
    let pick =
      List.fold_left
        (fun acc j ->
          let d = Problem.delta_objective problem a ~j ~i:target.(j) in
          match acc with
          | Some (d', _) when d' <= d -> acc
          | _ -> Some (d, j))
        None !diff
    in
    match pick with
    | None -> ()
    | Some (_, j) ->
      a.(j) <- target.(j);
      diff := List.filter (fun j' -> j' <> j) !diff;
      consider ()
  done;
  !best

(* Greedy capacity unloading: while some partition is overloaded, move
   the (component, destination) pair with the smallest exact objective
   delta out of the most-overloaded partition into one with room.
   Deterministic: ties break toward the lower delta, then lower
   component id, then lower destination — and the "most overloaded"
   anchor breaks toward the lower partition index. *)
let unload_capacity problem a =
  let nl = problem.Problem.netlist in
  let m = Problem.m problem and n = Problem.n problem in
  let sizes = Netlist.sizes nl in
  let caps = Topology.capacities problem.Problem.topology in
  let loads = Array.make m 0.0 in
  for j = 0 to n - 1 do
    loads.(a.(j)) <- loads.(a.(j)) +. sizes.(j)
  done;
  let overloaded () =
    let worst = ref (-1) and excess = ref 0.0 in
    for i = 0 to m - 1 do
      let e = loads.(i) -. caps.(i) in
      if e > !excess +. 1e-9 then begin
        excess := e;
        worst := i
      end
    done;
    !worst
  in
  let budget = ref (4 * n) in
  let stuck = ref false in
  let rec go () =
    let from = overloaded () in
    if from >= 0 && !budget > 0 && not !stuck then begin
      decr budget;
      let pick = ref None in
      for j = 0 to n - 1 do
        if a.(j) = from then
          for i = 0 to m - 1 do
            if i <> from && loads.(i) +. sizes.(j) <= caps.(i) +. 1e-9 then begin
              let d = Problem.delta_objective problem a ~j ~i in
              match !pick with
              | Some (d', _, _) when d' <= d -> ()
              | _ -> pick := Some (d, j, i)
            end
          done
      done;
      match !pick with
      | None -> stuck := true
      | Some (_, j, i) ->
        loads.(from) <- loads.(from) -. sizes.(j);
        loads.(i) <- loads.(i) +. sizes.(j);
        a.(j) <- i;
        go ()
    end
  in
  go ();
  Problem.capacity_feasible problem a

let repair problem a =
  let problem = Problem.normalize problem in
  let strict = Qmatrix.make ~penalty:1e12 problem in
  let timing_trivial = Qbpart_timing.Constraints.empty problem.Problem.constraints in
  let feasible () = Problem.feasible problem a in
  let rec attempt k =
    if feasible () then true
    else if k = 0 then false
    else begin
      ignore (unload_capacity problem a);
      if not timing_trivial then ignore (Repair.to_feasible strict a ~rounds:6);
      (* the timing descent ignores capacity, so the two passes
         alternate until a fixed point or the budget runs dry *)
      attempt (k - 1)
    end
  in
  attempt 4
