module Assignment = Qbpart_partition.Assignment

type entry = { assignment : Assignment.t; cost : float; origin : int; birth : int }

type verdict = Admitted | Replaced of entry | Rejected

type t = {
  cap : int;
  min_distance : int;
  m : int;
  mutable items : entry list; (* ascending (cost, birth) *)
  mutable births : int;
  mutable admissions : int;
}

let create ~capacity ~min_distance ~m =
  if capacity < 1 then invalid_arg "Epool.create: capacity must be >= 1";
  if min_distance < 0 then invalid_arg "Epool.create: negative min_distance";
  if m < 1 then invalid_arg "Epool.create: m must be >= 1";
  { cap = capacity; min_distance; m; items = []; births = 0; admissions = 0 }

let entries t = t.items
let best t = match t.items with [] -> None | e :: _ -> Some e
let size t = List.length t.items
let capacity t = t.cap
let admissions t = t.admissions

let order a b =
  match Float.compare a.cost b.cost with 0 -> Int.compare a.birth b.birth | c -> c

let insert t e =
  t.items <- List.sort order (e :: t.items);
  t.admissions <- t.admissions + 1

let remove t dead = t.items <- List.filter (fun e -> e != dead) t.items

(* Nearest entry by (aligned distance, birth): the deterministic
   anchor every admission decision hangs off. *)
let nearest t a =
  List.fold_left
    (fun acc e ->
      let d = Diversity.aligned_distance ~m:t.m e.assignment a in
      match acc with
      | Some (d', e') when d' < d || (d' = d && e'.birth <= e.birth) -> acc
      | _ -> Some (d, e))
    None t.items

let admit t a ~cost ~origin =
  let fresh () =
    let e = { assignment = Array.copy a; cost; origin; birth = t.births } in
    t.births <- t.births + 1;
    e
  in
  match nearest t a with
  | None ->
    insert t (fresh ());
    Admitted
  | Some (0, _) -> Rejected
  | Some (d, near) when d < t.min_distance ->
    if cost < near.cost then begin
      remove t near;
      insert t (fresh ());
      Replaced near
    end
    else Rejected
  | Some _ ->
    if List.length t.items < t.cap then begin
      insert t (fresh ());
      Admitted
    end
    else begin
      (* items is sorted, so the last entry is the worst (highest
         cost, then latest birth) — the one eviction can't demote the
         champion *)
      let worst = List.nth t.items (List.length t.items - 1) in
      if cost < worst.cost then begin
        remove t worst;
        insert t (fresh ());
        Replaced worst
      end
      else Rejected
    end

let min_pairwise_distance t =
  let rec go acc = function
    | [] | [ _ ] -> acc
    | e :: rest ->
      let acc =
        List.fold_left
          (fun acc e' ->
            min acc (Diversity.aligned_distance ~m:t.m e.assignment e'.assignment))
          acc rest
      in
      go acc rest
  in
  go max_int t.items
