module Constraints = Qbpart_timing.Constraints
module Rng = Qbpart_netlist.Rng
module Assignment = Qbpart_partition.Assignment
module Problem = Qbpart_core.Problem
module Burkard = Qbpart_core.Burkard
module Adaptive = Qbpart_core.Adaptive
module Dompool = Qbpart_pool.Dompool

type start_report = {
  start : int;
  generation : int;
  seed : int;
  attempts : int;
  reseeded : bool;
  best_cost : float;
  feasible_cost : float option;
  wall_seconds : float;
  stalled : bool;
  interrupted : bool;
  failure : string option;
}

exception All_starts_failed of (int * string) list

let () =
  Printexc.register_printer (function
    | All_starts_failed failures ->
      Some
        (Printf.sprintf "Evolve.All_starts_failed [%s]"
           (String.concat "; "
              (List.map (fun (k, msg) -> Printf.sprintf "start %d: %s" k msg) failures)))
    | _ -> None)

type result = {
  best_feasible : (Assignment.t * float) option;
  best : Assignment.t option;
  best_cost : float;
  winner : int option;
  reports : start_report list;
  elites : Epool.entry list;
  jobs : int;
  starts : int;
  generations : int;
  admitted : int;
  reseeded : int;
  interrupted : bool;
}

(* Identical streams to Portfolio.start_seed / Portfolio.retry_seed:
   generation 0 of an evolve run IS the head of the plain portfolio,
   bit for bit.  (The formulas are duplicated rather than imported
   because lib/engine sits above this library.) *)
let start_seed ~base k = base + (k * 0x9E3779B9)
let retry_seed ~base ~start ~attempt = start_seed ~base start + (attempt * 0x85EBCA6B)

(* Child-construction stream of start k: disjoint from the solve and
   retry streams so reseeding never perturbs a start's trajectory. *)
let child_seed ~base k = start_seed ~base k lxor 0x27D4EB2F

let solve ?(config = Burkard.Config.default) ?(max_rounds = 4) ?(factor = 8.0) ?jobs
    ?(inner_jobs = 1) ?(starts = 1) ?(generations = 4) ?(pool_size = 8) ?min_distance
    ?(retries = 0) ?initial ?(should_stop = fun () -> false) ?(stall = (0, 0.0))
    ?gap_solver ?on_improvement ?on_start_complete problem =
  if starts < 1 then invalid_arg "Evolve.solve: starts must be >= 1";
  if generations < 1 then invalid_arg "Evolve.solve: generations must be >= 1";
  if pool_size < 1 then invalid_arg "Evolve.solve: pool_size must be >= 1";
  if retries < 0 then invalid_arg "Evolve.solve: retries must be >= 0";
  if inner_jobs < 1 then invalid_arg "Evolve.solve: inner_jobs must be >= 1";
  let jobs =
    match jobs with
    | None -> max 1 (Domain.recommended_domain_count ())
    | Some j ->
      if j < 1 then invalid_arg "Evolve.solve: jobs must be >= 1";
      j
  in
  let problem = Problem.normalize problem in
  let n = Problem.n problem and m = Problem.m problem in
  let min_distance =
    match min_distance with
    | None -> max 1 (n / 16)
    | Some d ->
      if d < 0 then invalid_arg "Evolve.solve: min_distance must be >= 0";
      d
  in
  let cons = problem.Problem.constraints in
  (* force the memoized partner CSR before any domain spawns (same
     shared-state hazard as in Portfolio.solve) *)
  if n > 0 && not (Constraints.empty cons) then Constraints.prebuild cons;
  (* Generation plan: later generations get a half-share each so that
     generation 0 — the portfolio-identical exploration phase — keeps
     the majority of the budget.  Total is exactly [starts]: equal
     budget with a plain portfolio by construction. *)
  let gens = max 1 (min generations starts) in
  let later = if gens = 1 then 0 else max 1 (starts / (2 * gens)) in
  let gen0 = starts - ((gens - 1) * later) in
  let gen_lo g = if g = 0 then 0 else gen0 + ((g - 1) * later) in
  let gen_hi g = if g = 0 then gen0 else gen0 + (g * later) in
  let pool = Epool.create ~capacity:pool_size ~min_distance ~m in
  let lock = Mutex.create () in
  let inc_penalized = ref infinity in
  let inc_feasible = ref infinity in
  let report_improvement k (it : Burkard.iteration) =
    match on_improvement with
    | None -> ()
    | Some f ->
      Mutex.lock lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock lock)
        (fun () ->
          if it.Burkard.feasible && it.Burkard.objective < !inc_feasible then begin
            inc_feasible := it.Burkard.objective;
            f ~start:k ~cost:it.Burkard.objective ~feasible:true
          end
          else if it.Burkard.penalized < !inc_penalized then begin
            inc_penalized := it.Burkard.penalized;
            f ~start:k ~cost:it.Burkard.penalized ~feasible:false
          end)
  in
  let patience, epsilon = stall in
  let run_start k ~attempt ~initial =
    let seed = retry_seed ~base:config.Burkard.Config.seed ~start:k ~attempt in
    let config = { config with Burkard.Config.seed } in
    let local_best = ref infinity and since = ref 0 and stalled = ref false in
    let observe (it : Burkard.iteration) =
      (if patience > 0 then
         if it.Burkard.penalized < !local_best -. epsilon then begin
           local_best := it.Burkard.penalized;
           since := 0
         end
         else begin
           incr since;
           if !since >= patience then stalled := true
         end);
      report_improvement k it
    in
    let stop () = should_stop () || !stalled in
    let dpool =
      if inner_jobs > 1 then Dompool.create ~domains:inner_jobs else Dompool.sequential
    in
    let r =
      Fun.protect
        ~finally:(fun () -> Dompool.shutdown dpool)
        (fun () ->
          let workspace = Burkard.Workspace.create ~pool:dpool problem in
          Adaptive.solve ~config ~max_rounds ~factor ?initial ~should_stop:stop ~observe
            ?gap_solver ~workspace problem)
    in
    (seed, !stalled, r)
  in
  let run_supervised k ~generation ~initial ~reseeded =
    let t0 = Unix.gettimeofday () in
    let rec go attempt last_failure =
      if attempt > retries || (attempt > 0 && should_stop ()) then
        ( {
            start = k;
            generation;
            seed = retry_seed ~base:config.Burkard.Config.seed ~start:k ~attempt:(attempt - 1);
            attempts = attempt;
            reseeded;
            best_cost = infinity;
            feasible_cost = None;
            wall_seconds = Unix.gettimeofday () -. t0;
            stalled = false;
            interrupted = should_stop ();
            failure = last_failure;
          },
          None )
      else
        match run_start k ~attempt ~initial with
        | seed, stalled, r ->
          ( {
              start = k;
              generation;
              seed;
              attempts = attempt + 1;
              reseeded;
              best_cost = r.Adaptive.last.Burkard.best_cost;
              feasible_cost = Option.map snd r.Adaptive.best_feasible;
              wall_seconds = Unix.gettimeofday () -. t0;
              stalled;
              interrupted =
                r.Adaptive.last.Burkard.interrupted && (should_stop () || not stalled);
              failure = None;
            },
            Some r )
        | exception e -> go (attempt + 1) (Some (Printexc.to_string e))
    in
    go 0 None
  in
  let completed report best_feasible =
    match on_start_complete with
    | None -> ()
    | Some f ->
      Mutex.lock lock;
      Fun.protect ~finally:(fun () -> Mutex.unlock lock) (fun () -> f report best_feasible)
  in
  let results = Array.make starts None in
  (* One generation = one batch on a work-stealing pool, exactly the
     portfolio's shape: the calling domain is worker 0, helpers pull
     global start indices from an atomic counter. *)
  let run_batch ~generation ~lo ~hi initials =
    let next = Atomic.make lo in
    let worker () =
      let continue = ref true in
      while !continue do
        let k = Atomic.fetch_and_add next 1 in
        if k >= hi then continue := false
        else begin
          let initial, reseeded = initials.(k - lo) in
          let report, r = run_supervised k ~generation ~initial ~reseeded in
          results.(k) <- Some (report, r);
          completed report
            (Option.bind r (fun r ->
                 Option.map (fun (a, c) -> (Assignment.copy a, c)) r.Adaptive.best_feasible))
        end
      done
    in
    let helpers = Array.init (min jobs (hi - lo) - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers
  in
  let admitted = ref 0 in
  (* Pool admission in ascending global start index: the pool state
     after a generation is a function of the generation's results
     alone, never of which domain finished first. *)
  let admit_batch ~lo ~hi =
    for k = lo to hi - 1 do
      match results.(k) with
      | Some (_, Some r) -> (
        match r.Adaptive.best_feasible with
        | Some (a, cost) -> (
          match Epool.admit pool a ~cost ~origin:k with
          | Epool.Rejected -> ()
          | Epool.Admitted | Epool.Replaced _ -> incr admitted)
        | None -> ())
      | _ -> ()
    done
  in
  (* Reseeding: every later-generation start is warm-started from a
     deterministic recombination of the current elites — crossover,
     path relinking and recursive-bipartition seeds in rotation, each
     repaired toward C1 ∧ C2 before use.  Children are built
     sequentially between batches from the (jobs-invariant) pool
     state, so the whole schedule is a function of the base seed. *)
  let build_child k =
    let rng = Rng.create (child_seed ~base:config.Burkard.Config.seed k) in
    let bipart () = Seeds.recursive_bipartition rng problem in
    let elites = Array.of_list (Epool.entries pool) in
    let child =
      if Array.length elites >= 2 then begin
        let i1 = Rng.int rng (Array.length elites) in
        let i2 =
          let r = Rng.int rng (Array.length elites - 1) in
          if r >= i1 then r + 1 else r
        in
        let p1 = elites.(min i1 i2).Epool.assignment in
        let p2 = elites.(max i1 i2).Epool.assignment in
        match k mod 3 with
        | 0 -> Operators.crossover rng ~m p1 p2
        | 1 -> (
          match Operators.path_relink problem ~source:p1 ~target:p2 with
          | Some (a, _) -> a
          | None -> Operators.crossover rng ~m p1 p2)
        | _ -> bipart ()
      end
      else
        match Epool.best pool with
        | Some e -> Operators.crossover rng ~m e.Epool.assignment (bipart ())
        | None -> bipart ()
    in
    ignore (Operators.repair problem child : bool);
    child
  in
  let reseeded = ref 0 in
  let stopped_early = ref false in
  for g = 0 to gens - 1 do
    if should_stop () then stopped_early := true
    else begin
      let lo = gen_lo g and hi = gen_hi g in
      let initials =
        if g = 0 then
          Array.init (hi - lo) (fun i -> if i = 0 then (initial, false) else (None, false))
        else
          Array.init (hi - lo) (fun i ->
              incr reseeded;
              (Some (build_child (lo + i)), true))
      in
      run_batch ~generation:g ~lo ~hi initials;
      admit_batch ~lo ~hi
    end
  done;
  let failures = ref [] and survivors = ref 0 and executed = ref 0 in
  for k = starts - 1 downto 0 do
    match results.(k) with
    | None -> ()
    | Some (report, r) ->
      incr executed;
      (match (r, report.failure) with
      | Some _, _ -> incr survivors
      | None, Some msg -> failures := (k, msg) :: !failures
      | None, None -> incr survivors)
  done;
  if !executed > 0 && !survivors = 0 && !failures <> [] then
    raise (All_starts_failed !failures);
  (* Same deterministic reduction as the portfolio (DESIGN.md D7):
     ascending-index earliest strict winner via a downto scan. *)
  let best_feasible = ref None in
  let winner_feasible = ref None in
  let best = ref None in
  let best_cost = ref infinity in
  let winner_penalized = ref None in
  let interrupted = ref !stopped_early in
  let reports = ref [] in
  for k = starts - 1 downto 0 do
    match results.(k) with
    | None -> ()
    | Some (report, r) -> (
      reports := report :: !reports;
      if report.interrupted then interrupted := true;
      match r with
      | None -> ()
      | Some r ->
        (match r.Adaptive.best_feasible with
        | Some (_, c)
          when (match !best_feasible with Some (_, c') -> c <= c' | None -> true) ->
          best_feasible := r.Adaptive.best_feasible;
          winner_feasible := Some report.start
        | _ -> ());
        let c = r.Adaptive.last.Burkard.best_cost in
        if c <= !best_cost then begin
          best_cost := c;
          best := Some r.Adaptive.last.Burkard.best;
          winner_penalized := Some report.start
        end)
  done;
  let winner =
    match !winner_feasible with Some _ as w -> w | None -> !winner_penalized
  in
  {
    best_feasible = !best_feasible;
    best = !best;
    best_cost = !best_cost;
    winner;
    reports = !reports;
    elites = Epool.entries pool;
    jobs;
    starts;
    generations = gens;
    admitted = !admitted;
    reseeded = !reseeded;
    interrupted = !interrupted;
  }
