(** Assignment diversity, measured as partition-assignment Hamming
    distance: the number of components placed differently.  The elite
    pool admits on dominance over (objective, diversity), so "how far
    apart are two placements" is the one metric everything else builds
    on.

    Raw Hamming distance over-counts renamings: two assignments that
    differ only by permuting partition labels describe the same cut.
    {!aligned_distance} quotients that symmetry out (greedily, which is
    exact enough for pool admission and cheap at {m M = 16}). *)

module Assignment := Qbpart_partition.Assignment

val hamming : Assignment.t -> Assignment.t -> int
(** Positions assigned differently.  @raise Invalid_argument on length
    mismatch. *)

val align : m:int -> reference:Assignment.t -> Assignment.t -> Assignment.t
(** A relabeling of the second assignment that greedily maximizes
    per-label overlap with [reference]: the {m M x M} coincidence
    counts are matched largest-first (ties to the lower label pair, so
    the result is deterministic), unmatched labels keep a stable
    leftover order.  Returns a fresh array. *)

val aligned_distance : m:int -> Assignment.t -> Assignment.t -> int
(** [hamming a (align ~m ~reference:a b)]: label-permutation-quotiented
    distance, the metric the elite pool and the operators use. *)
