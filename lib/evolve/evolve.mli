(** Cooperating elite-pool population search.

    Where {!Qbpart_engine.Portfolio} runs K independent penalty-
    continuation starts and reduces, this driver makes the starts
    cooperate {e between} generations: every generation's feasible
    champions are offered to a diversity-guarded elite pool
    ({!Epool}), and the next generation's starts are warm-started from
    recombined elites — label-aligned crossover and path relinking
    ({!Operators}), plus recursive-bipartition seeds ({!Seeds}) —
    each repaired back to the C1/C2 feasible set before use.

    Determinism contract (DESIGN.md D7, extended as D12):

    - starts still never couple {e within} a generation — each runs
      exactly the trajectory its seed dictates, and generation results
      are admitted to the pool in ascending global start index, so the
      pool state (and hence every child) is a pure function of the
      base seed, never of domain count or completion order;
    - generation 0 uses the same seeds, in the same order, as a plain
      portfolio of the same base seed — with [generations = 1] the two
      are bit-identical;
    - the champion is chosen by the same ascending-index
      strict-improvement scan as the portfolio, over all generations.

    Warm starts are captured by Burkard's initial [consider], so a
    child's quality is reflected in its start's result and the
    reported champion always comes from an actually-executed
    trajectory — independently checkable by
    {!Qbpart_core.Certify.check}. *)

module Assignment := Qbpart_partition.Assignment
module Problem := Qbpart_core.Problem
module Burkard := Qbpart_core.Burkard

type start_report = {
  start : int;               (** global start index, [0 .. starts-1] *)
  generation : int;          (** generation this start ran in *)
  seed : int;                (** RNG seed of the last attempt executed *)
  attempts : int;            (** attempts consumed (1 unless retried) *)
  reseeded : bool;           (** start was warm-started from the pool *)
  best_cost : float;         (** best penalized cost this start reached *)
  feasible_cost : float option;  (** best feasible equation-(1) cost, if any *)
  wall_seconds : float;
  stalled : bool;
  interrupted : bool;
  failure : string option;
}

exception All_starts_failed of (int * string) list
(** Every executed start exhausted its attempts (same degradation
    contract as the portfolio's exception of the same name). *)

type result = {
  best_feasible : (Assignment.t * float) option;
  best : Assignment.t option;
  best_cost : float;
  winner : int option;       (** global start index of the champion *)
  reports : start_report list;  (** executed starts, ascending index *)
  elites : Epool.entry list; (** final pool, ascending (cost, birth) *)
  jobs : int;
  starts : int;              (** total starts across all generations *)
  generations : int;         (** generations actually configured *)
  admitted : int;            (** pool admissions (incl. replacements) *)
  reseeded : int;            (** starts warm-started from the pool *)
  interrupted : bool;
}

val start_seed : base:int -> int -> int
(** Same stream as [Portfolio.start_seed] — generation 0 of an evolve
    run replays the plain portfolio's starts exactly. *)

val retry_seed : base:int -> start:int -> attempt:int -> int
(** Same stream as [Portfolio.retry_seed]. *)

val solve :
  ?config:Burkard.Config.t ->
  ?max_rounds:int ->
  ?factor:float ->
  ?jobs:int ->
  ?inner_jobs:int ->
  ?starts:int ->
  ?generations:int ->
  ?pool_size:int ->
  ?min_distance:int ->
  ?retries:int ->
  ?initial:Assignment.t ->
  ?should_stop:(unit -> bool) ->
  ?stall:int * float ->
  ?gap_solver:Burkard.gap_solver ->
  ?on_improvement:(start:int -> cost:float -> feasible:bool -> unit) ->
  ?on_start_complete:(start_report -> (Assignment.t * float) option -> unit) ->
  Problem.t ->
  result
(** Run the population search.  [starts] (default 1) is the {e total}
    solve budget, split across [generations] (default 4, clamped to
    [starts]): later generations get [max 1 (starts / (2 *
    generations))] starts each and generation 0 the remainder, so at
    equal [starts] an evolve run spends exactly the portfolio's
    wall-clock budget.  [pool_size] (default 8) caps the elite pool;
    [min_distance] is the pool's diversity radius in aligned Hamming
    distance (default [max 1 (n / 16)]).

    [config], [max_rounds], [factor], [gap_solver] go to every start's
    {!Qbpart_core.Adaptive.solve} — [config.gap_race] and the
    per-start [inner_jobs] domain pool apply to evolve starts exactly
    as to portfolio starts.  [jobs], [retries], [initial],
    [should_stop], [stall], [on_improvement], [on_start_complete]
    keep their {!Qbpart_engine.Portfolio.solve} meaning ([initial]
    warm-starts global start 0 only; reports arrive per start, with
    the extra [generation]/[reseeded] fields).

    @raise Invalid_argument on non-positive [starts], [jobs],
    [inner_jobs], [generations], [pool_size] or negative [retries],
    [min_distance]. *)
