(** Recombination operators between elites.

    Both operators are deterministic in their inputs (plus the caller's
    seeded RNG for crossover) and both work up to partition-label
    renaming: the second parent / the relink target is first mapped
    through {!Diversity.align} so the operators recombine {e cuts},
    not label accidents.

    Raw children may violate C1 (capacity) and C2 (timing); {!repair}
    is the bridge back to the feasible set, built from the existing
    tracked [Repair] passes plus a greedy capacity unloader.  The
    driver only ever admits repaired, re-certified children. *)

module Assignment := Qbpart_partition.Assignment
module Problem := Qbpart_core.Problem
module Rng := Qbpart_netlist.Rng

val crossover : Rng.t -> m:int -> Assignment.t -> Assignment.t -> Assignment.t
(** Label-aligned uniform crossover: each component takes its placement
    from a fair-coin choice of parent (second parent relabeled onto
    the first).  Fresh array; parents untouched. *)

val path_relink :
  Problem.t -> source:Assignment.t -> target:Assignment.t ->
  (Assignment.t * float) option
(** Walk from [source] to the (label-aligned) [target] one component
    at a time, always applying the move with the smallest exact
    objective delta ({!Qbpart_core.Problem.delta_objective}; ties to
    the lowest component id), and return the best {e feasible}
    assignment visited strictly before the endpoint, with its
    objective — the endpoints themselves are already pool members.
    [None] when no feasible intermediate exists. *)

val repair : Problem.t -> Assignment.t -> bool
(** Pull an assignment into the C1 ∧ C2 feasible set, in place:
    greedy capacity unloading (move the cheapest component out of each
    overloaded partition, by exact objective delta) interleaved with
    the huge-penalty timing repair ([Repair.to_feasible]), iterated
    until both hold or the attempt budget runs out.  True iff the
    result is feasible; on [false] the buffer holds the best attempt
    (still a complete assignment, C3 always holds). *)
