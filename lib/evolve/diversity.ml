module Assignment = Qbpart_partition.Assignment

let hamming a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Diversity.hamming: length mismatch";
  let d = ref 0 in
  for j = 0 to n - 1 do
    if a.(j) <> b.(j) then incr d
  done;
  !d

(* Greedy maximum-overlap label matching.  The exact assignment problem
   would need a Hungarian solve; at M = 16 the greedy matching (pick
   the globally largest remaining coincidence count, ties to the lower
   (other label, reference label) pair) is within a few percent of
   optimal on partition-shaped overlap matrices and is trivially
   deterministic, which is what pool admission needs. *)
let align ~m ~reference other =
  let n = Array.length reference in
  if Array.length other <> n then invalid_arg "Diversity.align: length mismatch";
  let overlap = Array.make (m * m) 0 in
  for j = 0 to n - 1 do
    let r = reference.(j) and o = other.(j) in
    overlap.((o * m) + r) <- overlap.((o * m) + r) + 1
  done;
  let mapped = Array.make m (-1) in (* other label -> reference label *)
  let taken = Array.make m false in
  for _ = 1 to m do
    let best = ref (-1) and best_o = ref (-1) and best_r = ref (-1) in
    for o = 0 to m - 1 do
      if mapped.(o) < 0 then
        for r = 0 to m - 1 do
          if (not taken.(r)) && overlap.((o * m) + r) > !best then begin
            best := overlap.((o * m) + r);
            best_o := o;
            best_r := r
          end
        done
    done;
    if !best_o >= 0 then begin
      mapped.(!best_o) <- !best_r;
      taken.(!best_r) <- true
    end
  done;
  (* leftover labels (possible only if m exceeds the labels in use)
     take the free slots in ascending order *)
  let free = ref 0 in
  for o = 0 to m - 1 do
    if mapped.(o) < 0 then begin
      while taken.(!free) do
        incr free
      done;
      mapped.(o) <- !free;
      taken.(!free) <- true
    end
  done;
  Array.map (fun o -> mapped.(o)) other

let aligned_distance ~m a b = hamming a (align ~m ~reference:a b)
