module Netlist = Qbpart_netlist.Netlist
module Rng = Qbpart_netlist.Rng
module Assignment = Qbpart_partition.Assignment
module Problem = Qbpart_core.Problem

(* Grow a region of roughly [target] total size inside [set]: start
   from a random member, then repeatedly absorb the member with the
   heaviest total wiring into the region (ties to the lower id;
   disconnected members join last, in id order, via their zero gain).
   Quadratic in |set| in the worst case — fine at Table-I scale, and a
   gain heap slots in here transparently when the 10k-component
   netlists arrive. *)
let grow_region rng nl ~sizes ~set ~target =
  let members = Array.of_list set in
  let in_region = Hashtbl.create 16 in
  let gain = Hashtbl.create (Array.length members) in
  Array.iter (fun j -> Hashtbl.replace gain j 0.0) members;
  let xadj = Netlist.adj_offsets nl in
  let anbr = Netlist.adj_targets nl in
  let awgt = Netlist.adj_weights nl in
  let absorb j =
    Hashtbl.replace in_region j ();
    Hashtbl.remove gain j;
    for k = xadj.(j) to xadj.(j + 1) - 1 do
      match Hashtbl.find_opt gain anbr.(k) with
      | Some g -> Hashtbl.replace gain anbr.(k) (g +. awgt.(k))
      | None -> ()
    done
  in
  let anchor = members.(Rng.int rng (Array.length members)) in
  let region_size = ref sizes.(anchor) in
  absorb anchor;
  while !region_size < target && Hashtbl.length gain > 0 do
    let best = ref None in
    Hashtbl.iter
      (fun j g ->
        match !best with
        | Some (g', j') when g' > g || (g' = g && j' < j) -> ()
        | _ -> best := Some (g, j))
      gain;
    match !best with
    | None -> ()
    | Some (_, j) ->
      region_size := !region_size +. sizes.(j);
      absorb j
  done;
  in_region

let recursive_bipartition rng problem =
  let problem = Problem.normalize problem in
  let nl = problem.Problem.netlist in
  let m = Problem.m problem and n = Problem.n problem in
  let sizes = Netlist.sizes nl in
  let a = Array.make n 0 in
  let total set = List.fold_left (fun acc j -> acc +. sizes.(j)) 0.0 set in
  let rec split set parts label =
    match (set, parts) with
    | [], _ -> ()
    | _, 1 -> List.iter (fun j -> a.(j) <- label) set
    | _ ->
      let p1 = parts / 2 in
      let target = total set *. float_of_int p1 /. float_of_int parts in
      let region = grow_region rng nl ~sizes ~set ~target in
      let side1 = List.filter (fun j -> Hashtbl.mem region j) set in
      let side2 = List.filter (fun j -> not (Hashtbl.mem region j)) set in
      (* a degenerate cut (everything absorbed) still has to populate
         both sides: peel the tail off in id order *)
      let side1, side2 =
        if side2 = [] && List.length side1 > 1 then
          let k = List.length side1 * p1 / parts in
          let k = max 1 (min k (List.length side1 - 1)) in
          (List.filteri (fun i _ -> i < k) side1, List.filteri (fun i _ -> i >= k) side1)
        else (side1, side2)
      in
      split side1 p1 label;
      split side2 (parts - p1) (label + p1)
  in
  split (List.init n Fun.id) m 0;
  a
