(** The elite pool: a capacity-bounded set of diverse feasible
    assignments, the population the cooperating search breeds from.

    Admission is by dominance on (objective, diversity) and is a pure
    function of the admission {e sequence}: the driver feeds completed
    starts in ascending start-index order, so pool contents never
    depend on which domain finished first (property-tested under
    permuted completion order).

    Rules, applied in order against the candidate's nearest entry
    under {!Diversity.aligned_distance}:

    + distance 0 — a relabeling of a present elite — is rejected;
    + distance below [min_distance] replaces that nearest entry iff
      the candidate's objective is strictly better (the pool refines a
      region it already covers rather than crowding it);
    + otherwise the candidate joins while capacity remains, and once
      full it evicts the worst entry iff strictly better than it.

    The best entry can only ever be displaced by a strictly better
    candidate, so the pool champion is monotone in admissions. *)

module Assignment := Qbpart_partition.Assignment

type entry = {
  assignment : Assignment.t;  (** owned copy; feasible by contract *)
  cost : float;               (** plain equation-(1) objective *)
  origin : int;               (** global start index that produced it,
                                  or an operator tag from the driver *)
  birth : int;                (** admission sequence number; ties in
                                  cost break toward the earlier birth *)
}

type verdict =
  | Admitted
  | Replaced of entry   (** the displaced entry (nearest-within-radius
                            or the evicted worst) *)
  | Rejected            (** duplicate, too close without improving, or
                            worse than a full pool's worst *)

type t

val create : capacity:int -> min_distance:int -> m:int -> t
(** [capacity >= 1] slots; [min_distance >= 0] is the crowding radius
    in aligned-Hamming moves; [m] the partition count (label
    alignment).  @raise Invalid_argument on bad sizes. *)

val admit : t -> Assignment.t -> cost:float -> origin:int -> verdict
(** Offer a {e feasible} assignment (the driver certifies before
    offering; the pool trusts and copies it). *)

val entries : t -> entry list
(** Ascending (cost, birth): head is the champion. *)

val best : t -> entry option
val size : t -> int
val capacity : t -> int
val admissions : t -> int
(** Total candidates that entered ([Admitted] + [Replaced]). *)

val min_pairwise_distance : t -> int
(** Smallest aligned distance between any two entries; [max_int] with
    fewer than two.  A reported diversity floor for benches/tests. *)
