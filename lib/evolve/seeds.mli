(** Structurally diverse initial assignments by recursive bipartition
    (the multi-constraint recursive-bisection idea, PAPERS.md
    arXiv:2503.11168, reduced to what the pool needs: fast, seeded,
    connectivity-respecting starting points that look nothing like
    uniform-random placements).

    The component set is split in half by greedy region growth — a
    seeded anchor, then repeatedly absorb the outside component with
    the heaviest wiring into the region until the half's share of the
    total size is reached — and each side recurses on its share of the
    partition labels.  Deterministic in the RNG; the driver repairs
    the result to C1/C2 before using it. *)

module Assignment := Qbpart_partition.Assignment
module Problem := Qbpart_core.Problem
module Rng := Qbpart_netlist.Rng

val recursive_bipartition : Rng.t -> Problem.t -> Assignment.t
(** A complete assignment (C3 holds by construction); capacity and
    timing are the caller's repair problem. *)
