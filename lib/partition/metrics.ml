module Netlist = Qbpart_netlist.Netlist
module Wire = Qbpart_netlist.Wire
module Topology = Qbpart_topology.Topology
module Constraints = Qbpart_timing.Constraints
module Check = Qbpart_timing.Check

type t = {
  wirelength : float;
  cut_wires : int;
  external_weight : float;
  utilization : float array;
  max_utilization : float;
  timing_violations : int;
  worst_slack : float;
  feasible : bool;
}

let compute ?constraints nl topo a =
  let loads = Evaluate.loads nl topo a in
  let utilization =
    Array.mapi
      (fun i load ->
        let cap = Topology.capacity topo i in
        if cap > 0.0 then load /. cap else if load > 0.0 then infinity else 0.0)
      loads
  in
  let timing_violations, worst_slack =
    match constraints with
    | None -> (0, infinity)
    | Some c -> (Check.count c topo ~assignment:a, Check.worst_slack c topo ~assignment:a)
  in
  {
    wirelength = Evaluate.wirelength nl topo a;
    cut_wires = Evaluate.cut_wires nl a;
    external_weight = Evaluate.external_weight nl a;
    utilization;
    max_utilization = Array.fold_left Float.max 0.0 utilization;
    timing_violations;
    worst_slack;
    feasible = Validate.is_feasible ?constraints nl topo a;
  }

let pp ppf t =
  Format.fprintf ppf "wirelength        %.1f@." t.wirelength;
  Format.fprintf ppf "cut wires         %d (weight %.1f)@." t.cut_wires t.external_weight;
  Format.fprintf ppf "max utilization   %.1f%%@." (100.0 *. t.max_utilization);
  Format.fprintf ppf "timing violations %d (worst slack %g)@." t.timing_violations
    t.worst_slack;
  Format.fprintf ppf "feasible          %b@." t.feasible

let cut_matrix nl ~m a =
  let matrix = Array.make_matrix m m 0.0 in
  Array.iter
    (fun w ->
      let p1 = a.(Wire.u w) and p2 = a.(Wire.v w) in
      if p1 <> p2 then begin
        matrix.(p1).(p2) <- matrix.(p1).(p2) +. Wire.weight w;
        matrix.(p2).(p1) <- matrix.(p2).(p1) +. Wire.weight w
      end)
    (Netlist.wires nl);
  matrix
