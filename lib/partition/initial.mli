(** Initial-solution construction.

    GFM and GKL "start with an initial solution with no timing or
    capacity violations" (paper section 5).  The paper obtains that
    solution by running QBP with {m B = 0}; that variant lives in the
    core library ({!Qbpart_core.Burkard.initial_feasible}) because it
    needs the solver.  This module provides the solver-independent
    constructions: first-fit-decreasing packing and a randomized
    greedy that also respects timing constraints, used as fallbacks,
    for tests, and as random restart points. *)

module Netlist := Qbpart_netlist.Netlist
module Topology := Qbpart_topology.Topology
module Constraints := Qbpart_timing.Constraints
module Rng := Qbpart_netlist.Rng

val first_fit_decreasing : Netlist.t -> Topology.t -> Assignment.t option
(** Components by decreasing size into the currently least-loaded
    partition with room.  [None] if some component fits nowhere
    (capacity only; ignores timing). *)

val greedy_feasible :
  ?constraints:Constraints.t ->
  ?attempts:int ->
  Rng.t ->
  Netlist.t ->
  Topology.t ->
  unit ->
  Assignment.t option
(** Randomized greedy: components ordered by decreasing
    (constraint-degree, size), each placed in a random partition that
    respects capacity and all timing constraints against
    already-placed components.  Retries with fresh randomness up to
    [attempts] times (default 50). *)

val random_capacity_feasible :
  ?attempts:int -> Rng.t -> Netlist.t -> Topology.t -> unit -> Assignment.t option
(** Shuffled first-fit: random component order, random partition
    preference, capacity-feasible only. *)
