module Netlist = Qbpart_netlist.Netlist
module Topology = Qbpart_topology.Topology
module Constraints = Qbpart_timing.Constraints
module Check = Qbpart_timing.Check
module Rng = Qbpart_netlist.Rng

let by_decreasing_size nl =
  let order = Array.init (Netlist.n nl) Fun.id in
  Array.sort (fun a b -> Float.compare (Netlist.size nl b) (Netlist.size nl a)) order;
  order

let first_fit_decreasing nl topo =
  let m = Topology.m topo in
  let a = Array.make (Netlist.n nl) (-1) in
  let free = Array.init m (Topology.capacity topo) in
  let ok =
    Array.for_all
      (fun j ->
        let s = Netlist.size nl j in
        (* least-loaded-by-remaining-capacity partition with room *)
        let best = ref (-1) in
        for i = 0 to m - 1 do
          if free.(i) >= s && (!best = -1 || free.(i) > free.(!best)) then best := i
        done;
        if !best = -1 then false
        else begin
          a.(j) <- !best;
          free.(!best) <- free.(!best) -. s;
          true
        end)
      (by_decreasing_size nl)
  in
  if ok then Some a else None

let constraint_degree constraints j =
  match constraints with
  | None -> 0
  | Some c -> Constraints.partner_degree c j

(* Visit components breadth-first over the constraint graph so that a
   component is placed while its constrained partners are fresh in the
   layout; isolated components (and the no-constraints case) fall back
   to decreasing-size order.  Roots are chosen by decreasing
   constraint degree with random tie-breaking. *)
let bfs_order ?constraints rng nl =
  let n = Netlist.n nl in
  let base = Array.init n Fun.id in
  Rng.shuffle rng base;
  let key j = (constraint_degree constraints j, Netlist.size nl j) in
  let by_priority =
    Array.of_list (List.stable_sort (fun a b -> compare (key b) (key a)) (Array.to_list base))
  in
  match constraints with
  | None -> by_priority
  | Some c ->
    let poff = Constraints.partner_offsets c in
    let pids = Constraints.partner_ids c in
    let seen = Array.make n false in
    let order = Array.make n 0 in
    let k = ref 0 in
    let push j =
      if not seen.(j) then begin
        seen.(j) <- true;
        order.(!k) <- j;
        incr k
      end
    in
    let queue = Queue.create () in
    Array.iter
      (fun root ->
        if not seen.(root) then begin
          Queue.add root queue;
          while not (Queue.is_empty queue) do
            let j = Queue.pop queue in
            if not seen.(j) then begin
              push j;
              for x = poff.(j) to poff.(j + 1) - 1 do
                let other = pids.(x) in
                if not seen.(other) then Queue.add other queue
              done
            end
          done
        end)
      by_priority;
    order

let one_greedy_attempt ?constraints rng nl topo =
  let m = Topology.m topo in
  let n = Netlist.n nl in
  let order = bfs_order ?constraints rng nl in
  let a = Array.make n (-1) in
  let free = Array.init m (Topology.capacity topo) in
  let where j = if a.(j) >= 0 then Some a.(j) else None in
  (* Among timing-legal slots with room, prefer the one closest (in
     delay) to the already-placed constraint partners and wired
     neighbors, with random noise so restarts explore. *)
  let xadj = Netlist.adj_offsets nl in
  let anbr = Netlist.adj_targets nl in
  let awgt = Netlist.adj_weights nl in
  let pull j i =
    let total = ref 0.0 in
    (match constraints with
    | None -> ()
    | Some c ->
      let poff = Constraints.partner_offsets c in
      let pids = Constraints.partner_ids c in
      for k = poff.(j) to poff.(j + 1) - 1 do
        let j' = pids.(k) in
        if a.(j') >= 0 then
          total := !total +. Topology.d topo i a.(j') +. Topology.d topo a.(j') i
      done);
    for k = xadj.(j) to xadj.(j + 1) - 1 do
      let j' = anbr.(k) in
      if a.(j') >= 0 then total := !total +. (awgt.(k) *. Topology.b topo i a.(j'))
    done;
    !total
  in
  let pulls = Array.make m infinity in
  let ok =
    Array.for_all
      (fun j ->
        let s = Netlist.size nl j in
        Array.fill pulls 0 m infinity;
        let min_pull = ref infinity in
        for i = 0 to m - 1 do
          if free.(i) >= s then begin
            let timing_ok =
              match constraints with
              | None -> true
              | Some c -> Check.placement_ok c topo ~j ~at:i ~where
            in
            if timing_ok then begin
              let p = pull j i in
              pulls.(i) <- p;
              if p < !min_pull then min_pull := p
            end
          end
        done;
        if !min_pull = infinity then false
        else begin
          (* Among legal slots whose pull is close to the best, take
             the emptiest: proximity keeps timing satisfiable for the
             partners still to come, the capacity bias keeps the
             endgame from running out of room. *)
          let margin = (!min_pull *. 1.3) +. 1.0 +. Rng.float rng 1.0 in
          let best = ref (-1) in
          for i = 0 to m - 1 do
            if pulls.(i) <= margin && (!best = -1 || free.(i) > free.(!best)) then best := i
          done;
          a.(j) <- !best;
          free.(!best) <- free.(!best) -. s;
          true
        end)
      order
  in
  if ok then Some a else None

let greedy_feasible ?constraints ?(attempts = 50) rng nl topo () =
  let rec go k = if k = 0 then None
    else
      match one_greedy_attempt ?constraints rng nl topo with
      | Some a -> Some a
      | None -> go (k - 1)
  in
  go (max 1 attempts)

let random_capacity_feasible ?attempts rng nl topo () =
  greedy_feasible ?attempts rng nl topo ()
