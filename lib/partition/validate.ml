module Netlist = Qbpart_netlist.Netlist
module Topology = Qbpart_topology.Topology
module Constraints = Qbpart_timing.Constraints
module Check = Qbpart_timing.Check

type issue =
  | Out_of_range of { j : int; partition : int }
  | Capacity of { partition : int; load : float; capacity : float }
  | Timing of Check.violation

let pp_issue ppf = function
  | Out_of_range { j; partition } ->
    Format.fprintf ppf "component %d assigned to invalid partition %d" j partition
  | Capacity { partition; load; capacity } ->
    Format.fprintf ppf "partition %d over capacity: load %g > %g" partition load capacity
  | Timing v ->
    Format.fprintf ppf "timing %d->%d: delay %g > budget %g" v.Check.j1 v.Check.j2
      v.Check.delay v.Check.budget

let check ?constraints nl topo a =
  let m = Topology.m topo in
  let range_issues = ref [] in
  Array.iteri
    (fun j i ->
      if i < 0 || i >= m then range_issues := Out_of_range { j; partition = i } :: !range_issues)
    a;
  if !range_issues <> [] then List.rev !range_issues
  else begin
    let loads = Evaluate.loads nl topo a in
    let cap_issues =
      List.filter_map
        (fun i ->
          let load = loads.(i) and capacity = Topology.capacity topo i in
          if load > capacity then Some (Capacity { partition = i; load; capacity }) else None)
        (List.init m Fun.id)
    in
    let timing_issues =
      match constraints with
      | None -> []
      | Some c -> List.map (fun v -> Timing v) (Check.violations c topo ~assignment:a)
    in
    cap_issues @ timing_issues
  end

let is_feasible ?constraints nl topo a = check ?constraints nl topo a = []

let assert_feasible ?constraints nl topo a =
  match check ?constraints nl topo a with
  | [] -> ()
  | issues ->
    let shown = List.filteri (fun i _ -> i < 5) issues in
    let msgs = List.map (Format.asprintf "%a" pp_issue) shown in
    failwith
      (Printf.sprintf "infeasible assignment (%d issues): %s%s" (List.length issues)
         (String.concat "; " msgs)
         (if List.length issues > 5 then "; ..." else ""))
