(** Assignments of components to partitions.

    An assignment is the paper's {m 𝒜 : J → I}, represented densely as
    an [int array] of length {m N} with values in {m [0, M)}.  The
    boolean matrix {m [x_{ij}]} and the flattened vector {m y} of the
    QBP formulation are alternative "packagings" of the same data
    (paper section 3.1); conversions are provided for both. *)

type t = int array

val make : n:int -> int -> t
(** [make ~n i] assigns every component to partition [i]. *)

val copy : t -> t
val equal : t -> t -> bool

val check : m:int -> t -> unit
(** @raise Invalid_argument if any value lies outside {m [0, M)}. *)

val loads : Qbpart_netlist.Netlist.t -> m:int -> t -> float array
(** [loads nl ~m a] is the total component size per partition. *)

val partition_members : m:int -> t -> int list array
(** Component ids per partition, ascending. *)

val random :
  Qbpart_netlist.Rng.t -> n:int -> m:int -> t
(** Uniform random assignment (C3 only; ignores capacity/timing). *)

val to_flat : m:int -> t -> bool array
(** The QBP vector {m y} with {m y_r = x_{ij}}, {m r = i + j·M}
    (0-based version of the paper's {m r = i + (j-1)M}). *)

val of_flat : m:int -> n:int -> bool array -> t
(** Inverse of {!to_flat}.
    @raise Invalid_argument if the vector violates C3 (not exactly one
    partition per component) or has wrong length. *)

val flat_index : m:int -> i:int -> j:int -> int
(** {m r = i + j·M}. *)

val of_flat_index : m:int -> int -> int * int
(** [of_flat_index ~m r] is [(i, j)]. *)

val pp : Format.formatter -> t -> unit
