type t = int array

let make ~n i =
  if i < 0 then invalid_arg "Assignment.make: negative partition";
  Array.make n i

let copy = Array.copy
let equal a b = a = b

let check ~m a =
  Array.iteri
    (fun j i ->
      if i < 0 || i >= m then
        invalid_arg (Printf.sprintf "Assignment: component %d assigned to %d, not in [0,%d)" j i m))
    a

let loads nl ~m a =
  let loads = Array.make m 0.0 in
  Array.iteri (fun j i -> loads.(i) <- loads.(i) +. Qbpart_netlist.Netlist.size nl j) a;
  loads

let partition_members ~m a =
  let members = Array.make m [] in
  for j = Array.length a - 1 downto 0 do
    members.(a.(j)) <- j :: members.(a.(j))
  done;
  members

let random rng ~n ~m = Array.init n (fun _ -> Qbpart_netlist.Rng.int rng m)

let flat_index ~m ~i ~j = i + (j * m)
let of_flat_index ~m r = (r mod m, r / m)

let to_flat ~m a =
  let n = Array.length a in
  let y = Array.make (m * n) false in
  Array.iteri (fun j i -> y.(flat_index ~m ~i ~j) <- true) a;
  y

let of_flat ~m ~n y =
  if Array.length y <> m * n then invalid_arg "Assignment.of_flat: wrong length";
  let a = Array.make n (-1) in
  Array.iteri
    (fun r set ->
      if set then begin
        let i, j = of_flat_index ~m r in
        if a.(j) <> -1 then
          invalid_arg (Printf.sprintf "Assignment.of_flat: component %d assigned twice (C3)" j);
        a.(j) <- i
      end)
    y;
  Array.iteri
    (fun j i ->
      if i = -1 then
        invalid_arg (Printf.sprintf "Assignment.of_flat: component %d unassigned (C3)" j))
    a;
  a

let pp ppf a =
  Format.fprintf ppf "[%s]"
    (String.concat "; " (Array.to_list (Array.map string_of_int a)))
