(** Reporting metrics for a finished assignment.

    Everything the evaluators compute, packaged for human-readable
    reports (the CLI's [eval] subcommand and the examples). *)

module Netlist := Qbpart_netlist.Netlist
module Topology := Qbpart_topology.Topology
module Constraints := Qbpart_timing.Constraints

type t = {
  wirelength : float;           (** {m Σ w·b} over wires *)
  cut_wires : int;              (** wire pairs crossing partitions *)
  external_weight : float;      (** crossing interconnection weight *)
  utilization : float array;    (** per-partition load / capacity *)
  max_utilization : float;
  timing_violations : int;      (** violated directed budgets *)
  worst_slack : float;          (** {m min (D_C − D)}; +∞ if unconstrained *)
  feasible : bool;              (** C1 ∧ C2 *)
}

val compute :
  ?constraints:Constraints.t ->
  Netlist.t ->
  Topology.t ->
  Assignment.t ->
  t

val pp : Format.formatter -> t -> unit
(** Multi-line summary. *)

val cut_matrix : Netlist.t -> m:int -> Assignment.t -> float array array
(** [cut_matrix nl ~m a] is the {m M×M} matrix of interconnection
    weight between partition pairs (symmetric, zero diagonal) — the
    wiring-demand view used for MCM routability checks. *)
