(** Cost evaluation for assignments.

    Implements the paper's objective
    {m α·Σ p_{ij} x_{ij} + β·Σ a_{j_1 j_2} b_{𝒜(j_1) 𝒜(j_2)}}
    (equation (1)).  Wires are stored once per unordered pair, so the
    quadratic term counts each interconnection once — this is the
    "total Manhattan wire length" reported in the paper's tables when
    {m B} is the Manhattan metric.  The penalized variants additionally
    charge the embedding penalty for each violated directed timing
    constraint, matching the cost surface that the QBP solver
    minimizes. *)

module Netlist := Qbpart_netlist.Netlist
module Topology := Qbpart_topology.Topology
module Constraints := Qbpart_timing.Constraints

val wirelength : Netlist.t -> Topology.t -> Assignment.t -> float
(** Quadratic term with {m β = 1}: {m Σ_{wires} w · b_{𝒜(u) 𝒜(v)}}. *)

val linear : p:float array array -> Assignment.t -> float
(** Linear term with {m α = 1}: {m Σ_j p_{𝒜(j), j}}.  [p] is the
    {m M×N} assignment-cost matrix. *)

val objective :
  ?alpha:float ->
  ?beta:float ->
  ?p:float array array ->
  Netlist.t ->
  Topology.t ->
  Assignment.t ->
  float
(** Equation (1).  [alpha] and [beta] default to 1; a missing [p] is
    all-zero. *)

val penalized :
  ?alpha:float ->
  ?beta:float ->
  ?p:float array array ->
  penalty:float ->
  Netlist.t ->
  Topology.t ->
  Constraints.t ->
  Assignment.t ->
  float
(** {!objective} plus [penalty] per violated directed timing
    constraint — the value of {m yᵀQ̂y} up to the convention that each
    unordered wire is counted once. *)

val loads : Netlist.t -> Topology.t -> Assignment.t -> float array
(** Size occupied in each partition. *)

val capacity_excess : Netlist.t -> Topology.t -> Assignment.t -> float array
(** Per-partition {m max(0, load_i − c_i)}; all zeros iff C1 holds. *)

val capacity_feasible : Netlist.t -> Topology.t -> Assignment.t -> bool

val cut_wires : Netlist.t -> Assignment.t -> int
(** Number of wire pairs whose endpoints sit in different partitions. *)

val external_weight : Netlist.t -> Assignment.t -> float
(** Total interconnection weight crossing partition boundaries
    ({!wirelength} with the [Crossings] metric). *)
