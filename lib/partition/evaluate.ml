module Netlist = Qbpart_netlist.Netlist
module Wire = Qbpart_netlist.Wire
module Topology = Qbpart_topology.Topology
module Constraints = Qbpart_timing.Constraints
module Check = Qbpart_timing.Check

let wirelength nl topo a =
  Netlist.fold_wires nl ~init:0.0 ~f:(fun acc w ->
      acc +. (Wire.weight w *. Topology.b topo a.(Wire.u w) a.(Wire.v w)))

let linear ~p a =
  let total = ref 0.0 in
  Array.iteri (fun j i -> total := !total +. p.(i).(j)) a;
  !total

let objective ?(alpha = 1.0) ?(beta = 1.0) ?p nl topo a =
  let lin = match p with None -> 0.0 | Some p -> linear ~p a in
  (alpha *. lin) +. (beta *. wirelength nl topo a)

let penalized ?alpha ?beta ?p ~penalty nl topo constraints a =
  objective ?alpha ?beta ?p nl topo a
  +. (penalty *. float_of_int (Check.count constraints topo ~assignment:a))

let loads nl topo a = Assignment.loads nl ~m:(Topology.m topo) a

let capacity_excess nl topo a =
  let loads = loads nl topo a in
  Array.mapi (fun i load -> Float.max 0.0 (load -. Topology.capacity topo i)) loads

let capacity_feasible nl topo a =
  Array.for_all (fun x -> x <= 0.0) (capacity_excess nl topo a)

let cut_wires nl a =
  Netlist.fold_wires nl ~init:0 ~f:(fun acc w ->
      if a.(Wire.u w) <> a.(Wire.v w) then acc + 1 else acc)

let external_weight nl a =
  Netlist.fold_wires nl ~init:0.0 ~f:(fun acc w ->
      if a.(Wire.u w) <> a.(Wire.v w) then acc +. Wire.weight w else acc)
