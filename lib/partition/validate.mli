(** Full feasibility validation: C1 (capacity), C2 (timing) and the
    C3 range check, with human-readable diagnoses. *)

module Netlist := Qbpart_netlist.Netlist
module Topology := Qbpart_topology.Topology
module Constraints := Qbpart_timing.Constraints

type issue =
  | Out_of_range of { j : int; partition : int }
      (** C3/domain: component assigned outside {m [0, M)} *)
  | Capacity of { partition : int; load : float; capacity : float }
      (** C1 violated on one partition *)
  | Timing of Qbpart_timing.Check.violation
      (** C2 violated on one directed constraint *)

val pp_issue : Format.formatter -> issue -> unit

val check :
  ?constraints:Constraints.t ->
  Netlist.t ->
  Topology.t ->
  Assignment.t ->
  issue list
(** All problems with the assignment; [] iff feasible.  Omitting
    [constraints] skips C2 (Table II's relaxed setting). *)

val is_feasible :
  ?constraints:Constraints.t ->
  Netlist.t ->
  Topology.t ->
  Assignment.t ->
  bool

val assert_feasible :
  ?constraints:Constraints.t ->
  Netlist.t ->
  Topology.t ->
  Assignment.t ->
  unit
(** @raise Failure with a diagnosis listing the first few issues. *)
