(* Potential-based shortest-augmenting-path Hungarian algorithm
   (Jonker-Volgenant flavour), O(n^3).  Rows and columns are 1-based
   internally with index 0 used as the virtual start column, which
   keeps the augmenting-path bookkeeping branch-free. *)

let validate cost =
  let n = Array.length cost in
  if n = 0 then invalid_arg "Hungarian.solve: empty matrix";
  Array.iteri
    (fun r row ->
      if Array.length row <> n then invalid_arg "Hungarian.solve: matrix not square";
      Array.iteri
        (fun c x ->
          if Float.is_nan x || x = infinity || x = neg_infinity then
            invalid_arg (Printf.sprintf "Hungarian.solve: bad entry at (%d,%d): %g" r c x))
        row)
    cost;
  n

let solve cost =
  let n = validate cost in
  let u = Array.make (n + 1) 0.0 in
  let v = Array.make (n + 1) 0.0 in
  let p = Array.make (n + 1) 0 in (* p.(j) = row matched to column j; 0 = none *)
  let way = Array.make (n + 1) 0 in
  for i = 1 to n do
    p.(0) <- i;
    let j0 = ref 0 in
    let minv = Array.make (n + 1) infinity in
    let used = Array.make (n + 1) false in
    let continue = ref true in
    while !continue do
      used.(!j0) <- true;
      let i0 = p.(!j0) in
      let delta = ref infinity in
      let j1 = ref 0 in
      for j = 1 to n do
        if not used.(j) then begin
          let cur = cost.(i0 - 1).(j - 1) -. u.(i0) -. v.(j) in
          if cur < minv.(j) then begin
            minv.(j) <- cur;
            way.(j) <- !j0
          end;
          if minv.(j) < !delta then begin
            delta := minv.(j);
            j1 := j
          end
        end
      done;
      for j = 0 to n do
        if used.(j) then begin
          u.(p.(j)) <- u.(p.(j)) +. !delta;
          v.(j) <- v.(j) -. !delta
        end
        else minv.(j) <- minv.(j) -. !delta
      done;
      j0 := !j1;
      if p.(!j0) = 0 then continue := false
    done;
    (* augment along the alternating path *)
    let j0 = ref !j0 in
    while !j0 <> 0 do
      let j1 = way.(!j0) in
      p.(!j0) <- p.(j1);
      j0 := j1
    done
  done;
  let assignment = Array.make n (-1) in
  for j = 1 to n do
    assignment.(p.(j) - 1) <- j - 1
  done;
  let total = ref 0.0 in
  Array.iteri (fun r c -> total := !total +. cost.(r).(c)) assignment;
  (assignment, !total)

let cost_of cost assignment =
  let total = ref 0.0 in
  Array.iteri (fun r c -> total := !total +. cost.(r).(c)) assignment;
  !total
