(** Linear Assignment Problem solver.

    The LAP is the fully degenerate special case of the paper's
    partitioning problem (section 2.2.2: PP(1,0) with {m M = N} and
    unit sizes/capacities, so the assignment must be a permutation).
    Burkard's original heuristic solved a LAP in each iteration; our
    generalized solver uses a GAP instead, and this exact
    {m O(n³)} Hungarian algorithm (shortest-augmenting-path / potential
    form) remains as the reference solver for the QAP special case and
    for validating the GAP heuristics on degenerate instances. *)

val solve : float array array -> int array * float
(** [solve cost] for a square [n×n] matrix returns
    [(assignment, total)] where [assignment.(row) = col] is an optimal
    perfect matching minimizing [Σ cost.(row).(assignment.(row))].
    Costs may be negative; the matrix is not modified.
    @raise Invalid_argument on a non-square or empty matrix, or on
    NaN/infinite entries. *)

val cost_of : float array array -> int array -> float
(** Objective value of a given permutation under a cost matrix. *)
