(* Each row is a hashtable keyed by column.  Sorted iteration sorts the
   bindings on demand; all hot paths in the solvers use adjacency lists
   built once from this structure, so iteration cost here is not
   critical. *)

type t = {
  rows : int;
  cols : int;
  default : float;
  data : (int, float) Hashtbl.t array;
}

let create ?(default = 0.0) ~rows ~cols () =
  if rows < 0 || cols < 0 then invalid_arg "Sparse_matrix.create: negative dimension";
  { rows; cols; default; data = Array.init rows (fun _ -> Hashtbl.create 8) }

let rows t = t.rows
let cols t = t.cols
let default t = t.default

let check t r c =
  if r < 0 || r >= t.rows || c < 0 || c >= t.cols then
    invalid_arg
      (Printf.sprintf "Sparse_matrix: index (%d,%d) out of range %dx%d" r c t.rows t.cols)

let get t r c =
  check t r c;
  match Hashtbl.find_opt t.data.(r) c with Some x -> x | None -> t.default

let set t r c x =
  check t r c;
  if x = t.default then Hashtbl.remove t.data.(r) c else Hashtbl.replace t.data.(r) c x

let add t r c x = set t r c (get t r c +. x)
let mem t r c =
  check t r c;
  Hashtbl.mem t.data.(r) c

let nnz t = Array.fold_left (fun acc h -> acc + Hashtbl.length h) 0 t.data

let row_entries t r =
  check t r 0;
  Hashtbl.fold (fun c x acc -> (c, x) :: acc) t.data.(r) []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let iter_row t r f = List.iter (fun (c, x) -> f c x) (row_entries t r)

let iter t f =
  for r = 0 to t.rows - 1 do
    iter_row t r (fun c x -> f r c x)
  done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun r c x -> acc := f !acc r c x);
  !acc

let copy t = { t with data = Array.map Hashtbl.copy t.data }

let to_dense t =
  let m = Array.make_matrix t.rows t.cols t.default in
  iter t (fun r c x -> m.(r).(c) <- x);
  m

let of_dense ?(default = 0.0) dense =
  let rows = Array.length dense in
  let cols = if rows = 0 then 0 else Array.length dense.(0) in
  Array.iter
    (fun row ->
      if Array.length row <> cols then invalid_arg "Sparse_matrix.of_dense: ragged input")
    dense;
  let t = create ~default ~rows ~cols () in
  Array.iteri (fun r row -> Array.iteri (fun c x -> if x <> default then set t r c x) row) dense;
  t

let equal a b =
  a.rows = b.rows && a.cols = b.cols && a.default = b.default
  &&
  let sub x y =
    try
      iter x (fun r c v -> if get y r c <> v then raise Exit);
      true
    with Exit -> false
  in
  sub a b && sub b a
