type t = {
  components : Component.t array;
  wires : Wire.t array;                (* merged, sorted, each pair once *)
  (* Struct-of-arrays CSR adjacency: row [j] is
     [anbr.(xadj.(j) .. xadj.(j+1)-1)] / [awgt.(..)], neighbor-sorted.
     [awgt] is an unboxed float array; the layout is cache-linear so the
     solver inner loops never chase tuple pointers. *)
  xadj : int array;                    (* row offsets, length n+1 *)
  anbr : int array;                    (* neighbor ids, 2 * wire_count *)
  awgt : float array;                  (* wire weights, 2 * wire_count *)
  by_name : (string, int) Hashtbl.t;
  total_size : float;
  total_wire_weight : float;
}

(* Below this many wires the parallel CSR build is pure overhead. *)
let parallel_csr_cutoff = 65_536

(* Counting pass + exclusive prefix sum + in-order fill.  The merged
   wire array is sorted by [Wire.compare] (by u, then v, with u < v),
   so filling rows in wire order lands row [j]'s neighbors already
   ascending: first every x < j (from wires (x, j), ascending in x),
   then every y > j (from wires (j, y), ascending in y).  This matches
   the per-row [Array.sort] of the old boxed layout exactly — same
   neighbor order, hence bit-identical float summation downstream. *)
let build_csr_sequential n wires xadj anbr awgt =
  Array.iter
    (fun w ->
      xadj.(Wire.u w + 1) <- xadj.(Wire.u w + 1) + 1;
      xadj.(Wire.v w + 1) <- xadj.(Wire.v w + 1) + 1)
    wires;
  for j = 1 to n do
    xadj.(j) <- xadj.(j) + xadj.(j - 1)
  done;
  let cur = Array.sub xadj 0 n in
  Array.iter
    (fun w ->
      let u = Wire.u w and v = Wire.v w and x = Wire.weight w in
      anbr.(cur.(u)) <- v;
      awgt.(cur.(u)) <- x;
      cur.(u) <- cur.(u) + 1;
      anbr.(cur.(v)) <- u;
      awgt.(cur.(v)) <- x;
      cur.(v) <- cur.(v) + 1)
    wires

(* Deterministic parallel build: (A) each chunk of the wire array
   counts per-row degrees into its own array; (B) a sequential scan
   turns totals into [xadj] and rebases each chunk's counts into its
   per-row starting cursor; (C) chunks fill disjoint slots in
   parallel.  Every output position is a pure function of the wire
   array, so the result is identical to the sequential build for any
   pool size. *)
let build_csr_parallel pool n wires xadj anbr awgt =
  let m = Array.length wires in
  let chunks = min (Qbpart_pool.Dompool.size pool) ((m + parallel_csr_cutoff - 1) / parallel_csr_cutoff) in
  let chunks = max chunks 1 in
  let bounds =
    Array.init (chunks + 1) (fun c -> c * m / chunks)
  in
  let counts = Array.init chunks (fun _ -> Array.make n 0) in
  Qbpart_pool.Dompool.parallel_for pool ~chunks (fun c ->
      let cnt = counts.(c) in
      for k = bounds.(c) to bounds.(c + 1) - 1 do
        let w = wires.(k) in
        cnt.(Wire.u w) <- cnt.(Wire.u w) + 1;
        cnt.(Wire.v w) <- cnt.(Wire.v w) + 1
      done);
  (* Exclusive scan over rows, rebasing chunk counts into cursors. *)
  let running = ref 0 in
  for j = 0 to n - 1 do
    xadj.(j) <- !running;
    let row_start = ref !running in
    for c = 0 to chunks - 1 do
      let d = counts.(c).(j) in
      counts.(c).(j) <- !row_start;
      row_start := !row_start + d
    done;
    running := !row_start
  done;
  xadj.(n) <- !running;
  Qbpart_pool.Dompool.parallel_for pool ~chunks (fun c ->
      let cur = counts.(c) in
      for k = bounds.(c) to bounds.(c + 1) - 1 do
        let w = wires.(k) in
        let u = Wire.u w and v = Wire.v w and x = Wire.weight w in
        anbr.(cur.(u)) <- v;
        awgt.(cur.(u)) <- x;
        cur.(u) <- cur.(u) + 1;
        anbr.(cur.(v)) <- u;
        awgt.(cur.(v)) <- x;
        cur.(v) <- cur.(v) + 1
      done)

let build_csr ?pool n wires =
  let m = Array.length wires in
  let xadj = Array.make (n + 1) 0 in
  let anbr = Array.make (2 * m) 0 in
  let awgt = Array.make (2 * m) 0.0 in
  (match pool with
  | Some pool when Qbpart_pool.Dompool.size pool > 1 && m >= parallel_csr_cutoff ->
    build_csr_parallel pool n wires xadj anbr awgt
  | _ -> build_csr_sequential n wires xadj anbr awgt);
  (xadj, anbr, awgt)

let merge_wires n wire_list =
  (* Sum weights of parallel wires; key = u * n + v with u < v. *)
  let tbl = Hashtbl.create (List.length wire_list) in
  List.iter
    (fun w ->
      let u = Wire.u w and v = Wire.v w in
      if u < 0 || v >= n then
        invalid_arg (Printf.sprintf "Netlist: wire %d-%d references unknown component" u v);
      let key = (u * n) + v in
      let prev = match Hashtbl.find_opt tbl key with Some x -> x | None -> 0.0 in
      Hashtbl.replace tbl key (prev +. Wire.weight w))
    wire_list;
  let merged =
    Hashtbl.fold (fun key x acc -> Wire.make (key / n) (key mod n) ~weight:x :: acc) tbl []
  in
  let arr = Array.of_list merged in
  Array.sort Wire.compare arr;
  arr

let make_opt pool ~components ~wires =
  let components = Array.of_list components in
  let n = Array.length components in
  Array.iteri
    (fun idx c ->
      if Component.id c <> idx then
        invalid_arg
          (Printf.sprintf "Netlist.make: component %S has id %d, expected %d"
             (Component.name c) (Component.id c) idx))
    components;
  let by_name = Hashtbl.create n in
  Array.iter
    (fun c ->
      let name = Component.name c in
      if Hashtbl.mem by_name name then
        invalid_arg (Printf.sprintf "Netlist.make: duplicate component name %S" name);
      Hashtbl.replace by_name name (Component.id c))
    components;
  let wires = merge_wires n wires in
  let xadj, anbr, awgt = build_csr ?pool n wires in
  let total_size = Array.fold_left (fun acc c -> acc +. Component.size c) 0.0 components in
  let total_wire_weight = Array.fold_left (fun acc w -> acc +. Wire.weight w) 0.0 wires in
  { components; wires; xadj; anbr; awgt; by_name; total_size; total_wire_weight }

let make ~components ~wires = make_opt None ~components ~wires
let make_parallel ~pool ~components ~wires = make_opt (Some pool) ~components ~wires

module Builder = struct
  type t = {
    mutable comps : Component.t list; (* reversed *)
    mutable count : int;
    mutable wire_list : Wire.t list;
    names : (string, unit) Hashtbl.t;
  }

  let create () = { comps = []; count = 0; wire_list = []; names = Hashtbl.create 64 }

  let add_component b ?name ~size () =
    let id = b.count in
    let name = match name with Some s -> s | None -> Printf.sprintf "c%d" id in
    if Hashtbl.mem b.names name then
      invalid_arg (Printf.sprintf "Builder.add_component: duplicate name %S" name);
    Hashtbl.replace b.names name ();
    b.comps <- Component.make ~id ~name ~size :: b.comps;
    b.count <- id + 1;
    id

  let add_wire b j1 j2 ?(weight = 1.0) () =
    if j1 < 0 || j1 >= b.count || j2 < 0 || j2 >= b.count then
      invalid_arg (Printf.sprintf "Builder.add_wire: component id out of range (%d, %d)" j1 j2);
    b.wire_list <- Wire.make j1 j2 ~weight :: b.wire_list

  let build ?pool b = make_opt pool ~components:(List.rev b.comps) ~wires:b.wire_list
end

let n t = Array.length t.components

let component t j =
  if j < 0 || j >= n t then invalid_arg (Printf.sprintf "Netlist.component: id %d out of range" j);
  t.components.(j)

let components t = Array.copy t.components
let size t j = Component.size (component t j)
let sizes t = Array.map Component.size t.components
let total_size t = t.total_size
let find_by_name t name = Hashtbl.find_opt t.by_name name
let wires t = Array.copy t.wires
let iter_wires t f = Array.iter f t.wires
let fold_wires t ~init ~f = Array.fold_left f init t.wires
let wire_count t = Array.length t.wires
let total_wire_weight t = t.total_wire_weight

let adj_offsets t = t.xadj
let adj_targets t = t.anbr
let adj_weights t = t.awgt

let adj t j =
  if j < 0 || j >= n t then invalid_arg (Printf.sprintf "Netlist.adj: id %d out of range" j);
  let lo = t.xadj.(j) and hi = t.xadj.(j + 1) in
  Array.init (hi - lo) (fun k -> (t.anbr.(lo + k), t.awgt.(lo + k)))

let degree t j =
  if j < 0 || j >= n t then invalid_arg (Printf.sprintf "Netlist.degree: id %d out of range" j);
  t.xadj.(j + 1) - t.xadj.(j)

let connection t j1 j2 =
  if j1 = j2 || j1 < 0 || j1 >= n t then 0.0
  else
    (* Binary search over the neighbor-sorted CSR row. *)
    let anbr = t.anbr in
    let rec go lo hi =
      if lo >= hi then 0.0
      else
        let mid = (lo + hi) / 2 in
        let nb = anbr.(mid) in
        if nb = j2 then t.awgt.(mid) else if nb < j2 then go (mid + 1) hi else go lo mid
    in
    go t.xadj.(j1) t.xadj.(j1 + 1)

let connection_matrix t =
  let m = Sparse_matrix.create ~rows:(n t) ~cols:(n t) () in
  Array.iter
    (fun w ->
      Sparse_matrix.set m (Wire.u w) (Wire.v w) (Wire.weight w);
      Sparse_matrix.set m (Wire.v w) (Wire.u w) (Wire.weight w))
    t.wires;
  m

let equal a b =
  Array.length a.components = Array.length b.components
  && Array.for_all2 Component.equal a.components b.components
  && Array.length a.wires = Array.length b.wires
  && Array.for_all2 Wire.equal a.wires b.wires

let pp ppf t =
  Format.fprintf ppf "netlist<%d components, %d wire pairs, %g interconnections, size %g>"
    (n t) (wire_count t) t.total_wire_weight t.total_size
