type t = {
  components : Component.t array;
  wires : Wire.t array;                (* merged, sorted, each pair once *)
  adj : (int * float) array array;     (* adjacency built at construction *)
  by_name : (string, int) Hashtbl.t;
  total_size : float;
  total_wire_weight : float;
}

let build_adjacency n wires =
  let deg = Array.make n 0 in
  Array.iter
    (fun w ->
      deg.(Wire.u w) <- deg.(Wire.u w) + 1;
      deg.(Wire.v w) <- deg.(Wire.v w) + 1)
    wires;
  let adj = Array.init n (fun j -> Array.make deg.(j) (0, 0.0)) in
  let fill = Array.make n 0 in
  Array.iter
    (fun w ->
      let u = Wire.u w and v = Wire.v w and x = Wire.weight w in
      adj.(u).(fill.(u)) <- (v, x);
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- (u, x);
      fill.(v) <- fill.(v) + 1)
    wires;
  Array.iter (fun row -> Array.sort (fun (a, _) (b, _) -> Int.compare a b) row) adj;
  adj

let merge_wires n wire_list =
  (* Sum weights of parallel wires; key = u * n + v with u < v. *)
  let tbl = Hashtbl.create (List.length wire_list) in
  List.iter
    (fun w ->
      let u = Wire.u w and v = Wire.v w in
      if u < 0 || v >= n then
        invalid_arg (Printf.sprintf "Netlist: wire %d-%d references unknown component" u v);
      let key = (u * n) + v in
      let prev = match Hashtbl.find_opt tbl key with Some x -> x | None -> 0.0 in
      Hashtbl.replace tbl key (prev +. Wire.weight w))
    wire_list;
  let merged =
    Hashtbl.fold (fun key x acc -> Wire.make (key / n) (key mod n) ~weight:x :: acc) tbl []
  in
  let arr = Array.of_list merged in
  Array.sort Wire.compare arr;
  arr

let make ~components ~wires =
  let components = Array.of_list components in
  let n = Array.length components in
  Array.iteri
    (fun idx c ->
      if Component.id c <> idx then
        invalid_arg
          (Printf.sprintf "Netlist.make: component %S has id %d, expected %d"
             (Component.name c) (Component.id c) idx))
    components;
  let by_name = Hashtbl.create n in
  Array.iter
    (fun c ->
      let name = Component.name c in
      if Hashtbl.mem by_name name then
        invalid_arg (Printf.sprintf "Netlist.make: duplicate component name %S" name);
      Hashtbl.replace by_name name (Component.id c))
    components;
  let wires = merge_wires n wires in
  let adj = build_adjacency n wires in
  let total_size = Array.fold_left (fun acc c -> acc +. Component.size c) 0.0 components in
  let total_wire_weight = Array.fold_left (fun acc w -> acc +. Wire.weight w) 0.0 wires in
  { components; wires; adj; by_name; total_size; total_wire_weight }

module Builder = struct
  type t = {
    mutable comps : Component.t list; (* reversed *)
    mutable count : int;
    mutable wire_list : Wire.t list;
    names : (string, unit) Hashtbl.t;
  }

  let create () = { comps = []; count = 0; wire_list = []; names = Hashtbl.create 64 }

  let add_component b ?name ~size () =
    let id = b.count in
    let name = match name with Some s -> s | None -> Printf.sprintf "c%d" id in
    if Hashtbl.mem b.names name then
      invalid_arg (Printf.sprintf "Builder.add_component: duplicate name %S" name);
    Hashtbl.replace b.names name ();
    b.comps <- Component.make ~id ~name ~size :: b.comps;
    b.count <- id + 1;
    id

  let add_wire b j1 j2 ?(weight = 1.0) () =
    if j1 < 0 || j1 >= b.count || j2 < 0 || j2 >= b.count then
      invalid_arg (Printf.sprintf "Builder.add_wire: component id out of range (%d, %d)" j1 j2);
    b.wire_list <- Wire.make j1 j2 ~weight :: b.wire_list

  let build b = make ~components:(List.rev b.comps) ~wires:b.wire_list
end

let n t = Array.length t.components

let component t j =
  if j < 0 || j >= n t then invalid_arg (Printf.sprintf "Netlist.component: id %d out of range" j);
  t.components.(j)

let components t = Array.copy t.components
let size t j = Component.size (component t j)
let sizes t = Array.map Component.size t.components
let total_size t = t.total_size
let find_by_name t name = Hashtbl.find_opt t.by_name name
let wires t = Array.copy t.wires
let wire_count t = Array.length t.wires
let total_wire_weight t = t.total_wire_weight

let adj t j =
  if j < 0 || j >= n t then invalid_arg (Printf.sprintf "Netlist.adj: id %d out of range" j);
  t.adj.(j)

let degree t j = Array.length (adj t j)

let connection t j1 j2 =
  if j1 = j2 then 0.0
  else
    let row = adj t j1 in
    (* Binary search over the neighbor-sorted row. *)
    let rec go lo hi =
      if lo >= hi then 0.0
      else
        let mid = (lo + hi) / 2 in
        let nb, x = row.(mid) in
        if nb = j2 then x else if nb < j2 then go (mid + 1) hi else go lo mid
    in
    go 0 (Array.length row)

let connection_matrix t =
  let m = Sparse_matrix.create ~rows:(n t) ~cols:(n t) () in
  Array.iter
    (fun w ->
      Sparse_matrix.set m (Wire.u w) (Wire.v w) (Wire.weight w);
      Sparse_matrix.set m (Wire.v w) (Wire.u w) (Wire.weight w))
    t.wires;
  m

let equal a b =
  Array.length a.components = Array.length b.components
  && Array.for_all2 Component.equal a.components b.components
  && Array.length a.wires = Array.length b.wires
  && Array.for_all2 Wire.equal a.wires b.wires

let pp ppf t =
  Format.fprintf ppf "netlist<%d components, %d wire pairs, %g interconnections, size %g>"
    (n t) (wire_count t) t.total_wire_weight t.total_size
