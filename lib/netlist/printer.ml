let to_buffer buf nl =
  Buffer.add_string buf "# qbpart netlist\n";
  Array.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "component %s %.17g\n" (Component.name c) (Component.size c)))
    (Netlist.components nl);
  Array.iter
    (fun w ->
      let name j = Component.name (Netlist.component nl j) in
      Buffer.add_string buf
        (Printf.sprintf "wire %s %s %.17g\n" (name (Wire.u w)) (name (Wire.v w)) (Wire.weight w)))
    (Netlist.wires nl)

let to_string nl =
  let buf = Buffer.create 4096 in
  to_buffer buf nl;
  Buffer.contents buf

let to_file path nl =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc (to_string nl))
