(** Textual netlist format writer; inverse of {!Parser}. *)

val to_buffer : Buffer.t -> Netlist.t -> unit
val to_string : Netlist.t -> string
val to_file : string -> Netlist.t -> unit
(** @raise Sys_error if the file cannot be written. *)
