type t = { id : int; name : string; size : float }

let make ~id ~name ~size =
  if size <= 0.0 then
    invalid_arg (Printf.sprintf "Component.make %S: size must be > 0 (got %g)" name size);
  if id < 0 then invalid_arg "Component.make: id must be >= 0";
  { id; name; size }

let id t = t.id
let name t = t.name
let size t = t.size
let equal a b = a.id = b.id && String.equal a.name b.name && a.size = b.size
let compare a b = Int.compare a.id b.id
let pp ppf t = Format.fprintf ppf "%s#%d(size=%g)" t.name t.id t.size
