type op =
  | Add_component of { name : string; size : float }
  | Remove_component of { name : string }
  | Add_wire of { u : string; v : string; weight : float }
  | Remove_wire of { u : string; v : string }
  | Retime of { src : string; dst : string; budget : float }

type t = op list

type error = { at : int; what : string; reason : string }

let error_to_string e = Printf.sprintf "delta op %d (%s): %s" e.at e.what e.reason

let op_to_string = function
  | Add_component { name; size } -> Printf.sprintf "add %s %.17g" name size
  | Remove_component { name } -> Printf.sprintf "remove %s" name
  | Add_wire { u; v; weight } -> Printf.sprintf "wire %s %s %.17g" u v weight
  | Remove_wire { u; v } -> Printf.sprintf "unwire %s %s" u v
  | Retime { src; dst; budget } -> Printf.sprintf "retime %s %s %.17g" src dst budget

let to_string ops = String.concat "" (List.map (fun op -> op_to_string op ^ "\n") ops)

(* ------------------------------------------------------------------ *)
(* Parsing: same shape as Parser — total, line-numbered errors.        *)

exception Fail of error

let fail at what fmt =
  Printf.ksprintf (fun reason -> raise (Fail { at; what; reason })) fmt

let tokens line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line =
    match String.index_opt line ';' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.map (fun t ->
         if String.length t > 0 && t.[String.length t - 1] = '\r' then
           String.sub t 0 (String.length t - 1)
         else t)
  |> List.filter (fun t -> t <> "")

let float_of_token at line what tok =
  match float_of_string_opt tok with
  | Some f when Float.is_finite f -> f
  | Some _ -> fail at line "%s is not finite: %S" what tok
  | None -> fail at line "expected a number for %s, got %S" what tok

let parse_string text =
  let lines = String.split_on_char '\n' text in
  try
    let ops =
      List.concat (List.mapi
        (fun i line ->
          let at = i + 1 in
          match tokens line with
          | [] -> []
          | [ "add"; name; size ] ->
              [ Add_component { name; size = float_of_token at line "size" size } ]
          | [ "remove"; name ] -> [ Remove_component { name } ]
          | [ "wire"; u; v ] -> [ Add_wire { u; v; weight = 1.0 } ]
          | [ "wire"; u; v; w ] ->
              [ Add_wire { u; v; weight = float_of_token at line "weight" w } ]
          | [ "unwire"; u; v ] -> [ Remove_wire { u; v } ]
          | [ "retime"; src; dst; b ] ->
              [ Retime { src; dst; budget = float_of_token at line "budget" b } ]
          | verb :: _ ->
              fail at line
                "unknown or malformed delta op %S (expected add/remove/wire/unwire/retime)"
                verb)
        lines)
    in
    Ok ops
  with Fail e -> Error e

(* ------------------------------------------------------------------ *)
(* Application: a mutable name-keyed model of the edited netlist.      *)

type slot = {
  s_name : string;
  s_size : float;
  s_origin : int; (* old id, or -1 for components added by the delta *)
  mutable s_alive : bool;
}

type model = {
  mutable slots : slot array;
  mutable n_slots : int;
  by_name : (string, int) Hashtbl.t; (* alive components only *)
  wires : (int * int, float) Hashtbl.t; (* key (min slot, max slot) *)
  mutable budgets : (int * int * float) list; (* directed, slot ids *)
  touched : (int, unit) Hashtbl.t;
}

let model_of_netlist nl =
  let n = Netlist.n nl in
  let slots =
    Array.init (max n 1) (fun j ->
        if j < n then
          let c = Netlist.component nl j in
          { s_name = Component.name c; s_size = Component.size c; s_origin = j; s_alive = true }
        else { s_name = ""; s_size = 1.0; s_origin = -1; s_alive = false })
  in
  let by_name = Hashtbl.create (2 * n) in
  for j = 0 to n - 1 do
    Hashtbl.replace by_name slots.(j).s_name j
  done;
  let wires = Hashtbl.create (2 * Netlist.wire_count nl + 16) in
  Array.iter
    (fun w -> Hashtbl.replace wires (Wire.u w, Wire.v w) (Wire.weight w))
    (Netlist.wires nl);
  { slots; n_slots = n; by_name; wires; budgets = []; touched = Hashtbl.create 16 }

let add_slot m slot =
  if m.n_slots = Array.length m.slots then begin
    let bigger = Array.make (2 * Array.length m.slots) slot in
    Array.blit m.slots 0 bigger 0 m.n_slots;
    m.slots <- bigger
  end;
  m.slots.(m.n_slots) <- slot;
  m.n_slots <- m.n_slots + 1;
  m.n_slots - 1

let touch m j = Hashtbl.replace m.touched j ()

let lookup m at what name =
  match Hashtbl.find_opt m.by_name name with
  | Some j -> j
  | None -> fail at what "unknown component %S" name

let wire_key u v = if u < v then (u, v) else (v, u)

let apply_op m at op =
  let what = op_to_string op in
  match op with
  | Add_component { name; size } ->
      if Hashtbl.mem m.by_name name then fail at what "duplicate component name %S" name;
      if not (Float.is_finite size) || size <= 0.0 then
        fail at what "component size must be finite and > 0 (got %g)" size;
      let j = add_slot m { s_name = name; s_size = size; s_origin = -1; s_alive = true } in
      Hashtbl.replace m.by_name name j;
      touch m j
  | Remove_component { name } ->
      let j = lookup m at what name in
      m.slots.(j).s_alive <- false;
      Hashtbl.remove m.by_name name;
      (* Incident wires and budgets go with the component. *)
      let incident =
        Hashtbl.fold (fun (u, v) _ acc -> if u = j || v = j then (u, v) :: acc else acc) m.wires []
      in
      List.iter
        (fun (u, v) ->
          Hashtbl.remove m.wires (u, v);
          touch m u;
          touch m v)
        incident;
      m.budgets <-
        List.filter
          (fun (src, dst, _) ->
            if src = j || dst = j then begin
              touch m src;
              touch m dst;
              false
            end
            else true)
          m.budgets
  | Add_wire { u; v; weight } ->
      let ju = lookup m at what u and jv = lookup m at what v in
      if ju = jv then fail at what "self-loop on component %S" u;
      if not (Float.is_finite weight) || weight <= 0.0 then
        fail at what "wire weight must be finite and > 0 (got %g)" weight;
      let key = wire_key ju jv in
      let prev = Option.value (Hashtbl.find_opt m.wires key) ~default:0.0 in
      Hashtbl.replace m.wires key (prev +. weight);
      touch m ju;
      touch m jv
  | Remove_wire { u; v } ->
      let ju = lookup m at what u and jv = lookup m at what v in
      if ju = jv then fail at what "self-loop on component %S" u;
      let key = wire_key ju jv in
      if not (Hashtbl.mem m.wires key) then
        fail at what "no wire between %S and %S" u v;
      Hashtbl.remove m.wires key;
      touch m ju;
      touch m jv
  | Retime { src; dst; budget } ->
      let js = lookup m at what src and jd = lookup m at what dst in
      if js = jd then fail at what "self-loop timing budget on component %S" src;
      if not (Float.is_finite budget) || budget <= 0.0 then
        fail at what "timing budget must be finite and > 0 (got %g)" budget;
      m.budgets <- (js, jd, budget) :: m.budgets;
      touch m js;
      touch m jd

type applied = {
  netlist : Netlist.t;
  new_of_old : int array;
  old_of_new : int array;
  touched : int list;
  retimes : (int * int * float) list;
  dims_changed : bool;
}

let apply nl ops =
  let n0 = Netlist.n nl in
  let m = model_of_netlist nl in
  try
    List.iteri (fun i op -> apply_op m (i + 1) op) ops;
    (* Dense renumbering: surviving originals keep their relative order,
       added components follow in insertion order.  A pure add/wire/retime
       delta therefore leaves every pre-existing id unchanged. *)
    let new_of_slot = Array.make m.n_slots (-1) in
    let next = ref 0 in
    for j = 0 to m.n_slots - 1 do
      if m.slots.(j).s_alive then begin
        new_of_slot.(j) <- !next;
        incr next
      end
    done;
    let n_new = !next in
    let new_of_old = Array.init n0 (fun j -> new_of_slot.(j)) in
    let old_of_new = Array.make n_new (-1) in
    for j = 0 to n0 - 1 do
      if new_of_old.(j) >= 0 then old_of_new.(new_of_old.(j)) <- j
    done;
    let components = ref [] in
    for j = m.n_slots - 1 downto 0 do
      if m.slots.(j).s_alive then
        components :=
          Component.make ~id:new_of_slot.(j) ~name:m.slots.(j).s_name ~size:m.slots.(j).s_size
          :: !components
    done;
    let wires =
      Hashtbl.fold
        (fun (u, v) weight acc ->
          if m.slots.(u).s_alive && m.slots.(v).s_alive then
            Wire.make new_of_slot.(u) new_of_slot.(v) ~weight :: acc
          else acc)
        m.wires []
    in
    let netlist = Netlist.make ~components:!components ~wires in
    let touched =
      Hashtbl.fold
        (fun j () acc -> if m.slots.(j).s_alive then new_of_slot.(j) :: acc else acc)
        m.touched []
      |> List.sort_uniq Int.compare
    in
    let retimes =
      List.rev_map
        (fun (src, dst, b) -> (new_of_slot.(src), new_of_slot.(dst), b))
        (List.filter
           (fun (src, dst, _) -> m.slots.(src).s_alive && m.slots.(dst).s_alive)
           m.budgets)
    in
    let dims_changed = n_new <> n0 || Array.exists (fun j -> j < 0) new_of_old in
    Ok { netlist; new_of_old; old_of_new; touched; retimes; dims_changed }
  with Fail e -> Error e

let validate nl ops = Result.map (fun (_ : applied) -> ()) (apply nl ops)
