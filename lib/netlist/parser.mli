(** Textual netlist format reader.

    Line-oriented format, one declaration per line:
    {v
    # comment (also ';')
    component <name> <size>
    wire <name1> <name2> [weight]
    v}
    Names are whitespace-free tokens; [weight] defaults to 1.  Wires
    must reference previously declared components.  Parallel [wire]
    lines accumulate.  This is the on-disk format produced by
    {!Printer} and consumed by the [qbpart] command-line tool.

    The parser is total: no input — including arbitrary binary garbage
    — makes it raise.  Sizes and weights must be finite and positive;
    trailing carriage returns (CRLF files) are accepted. *)

type error = { line : int; message : string }
(** [line] is 1-based and always within the parsed input. *)

type file_error = [ `Parse of error | `Io of string ]
(** What can go wrong reading a file: a syntax error at a line, or an
    I/O failure (unreadable, nonexistent, a directory, ...). *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val pp_file_error : Format.formatter -> file_error -> unit
val file_error_to_string : file_error -> string

val parse_string : string -> (Netlist.t, error) result
val parse_channel : in_channel -> (Netlist.t, file_error) result
(** [`Io] if reading the channel fails mid-stream. *)

val parse_file : string -> (Netlist.t, file_error) result
(** Total: an unopenable or unreadable file is [`Io], never a raised
    [Sys_error]. *)
