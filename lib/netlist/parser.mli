(** Textual netlist format reader.

    Line-oriented format, one declaration per line:
    {v
    # comment (also ';')
    component <name> <size>
    wire <name1> <name2> [weight]
    v}
    Names are whitespace-free tokens; [weight] defaults to 1.  Wires
    must reference previously declared components.  Parallel [wire]
    lines accumulate.  This is the on-disk format produced by
    {!Printer} and consumed by the [qbpart] command-line tool. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val parse_string : string -> (Netlist.t, error) result
val parse_channel : in_channel -> (Netlist.t, error) result
val parse_file : string -> (Netlist.t, error) result
(** @raise Sys_error if the file cannot be opened. *)
