(** Deterministic pseudo-random number generator.

    A small, self-contained splitmix64/xoshiro256** implementation so
    that circuit generation, solver tie-breaking, and experiments are
    reproducible regardless of the OCaml stdlib [Random] version.  All
    generators in this repository thread a value of this type
    explicitly; there is no global state. *)

type t
(** Mutable PRNG state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed.  Equal seeds
    yield equal streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split t] draws from [t] and returns a fresh generator whose stream
    is (for practical purposes) independent of [t]'s subsequent
    output.  Used to give each sub-task its own stream. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  [bound] must be > 0. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val log_uniform : t -> lo:float -> hi:float -> float
(** Log-uniformly distributed in [lo, hi]; [0 < lo <= hi].  Used for
    component sizes that span several orders of magnitude. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform random permutation of [0..n-1]. *)
