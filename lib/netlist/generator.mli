(** Synthetic circuit generation.

    The paper evaluates on seven proprietary industrial circuits whose
    published statistics are component count, interconnection count and
    timing-constraint count (Table I), with component sizes "ranging
    about 2 orders of magnitude".  This generator produces circuits
    matching those statistics.  Wiring follows a planted-cluster model:
    components belong to hidden natural clusters and wires fall inside
    a cluster with probability [locality], which mimics the modular
    structure of real functional-block netlists and gives optimizers
    the same kind of improvement headroom the paper reports. *)

type params = {
  n : int;                (** number of components *)
  wires : int;            (** total interconnections (Table I "# of wires") *)
  size_min : float;       (** smallest component size; > 0 *)
  size_max : float;       (** largest component size *)
  clusters : int;         (** hidden cluster count; >= 1 *)
  locality : float;       (** probability a wire stays intra-cluster, in [0,1] *)
  max_multiplicity : int; (** max parallel wires drawn per pick; >= 1 *)
}

val default_params : n:int -> wires:int -> params
(** Sizes span [1, 100] (two orders of magnitude), 20 clusters,
    locality 0.8, multiplicity up to 4 — calibrated so that the
    generated suite reproduces the qualitative behaviour of the
    paper's Tables II/III. *)

val generate :
  ?name_prefix:string -> ?pool:Qbpart_pool.Dompool.t -> Rng.t -> params -> Netlist.t
(** Deterministic for a given generator state.  The result has exactly
    [params.n] components and total wire weight exactly [params.wires]
    (provided [n >= 2] and [wires >= 0]).  [pool] fans the CSR
    adjacency construction on large instances (values unchanged).
    @raise Invalid_argument on nonsensical parameters. *)

val hidden_clusters : Rng.t -> params -> int array
(** The cluster labels that {!generate} would assign with an equal
    generator state: [generate] consumes the same stream, so callers
    wanting labels should [Rng.copy] first.  Exposed for tests. *)
