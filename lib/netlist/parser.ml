type error = { line : int; message : string }
type file_error = [ `Parse of error | `Io of string ]

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message
let error_to_string e = Format.asprintf "%a" pp_error e

let pp_file_error ppf = function
  | `Parse e -> pp_error ppf e
  | `Io msg -> Format.pp_print_string ppf msg

let file_error_to_string e = Format.asprintf "%a" pp_file_error e

exception Fail of error

let fail line fmt = Printf.ksprintf (fun message -> raise (Fail { line; message })) fmt

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.map (fun s ->
         (* accept CRLF input: strip a trailing carriage return *)
         let l = String.length s in
         if l > 0 && s.[l - 1] = '\r' then String.sub s 0 (l - 1) else s)
  |> List.filter (fun s -> s <> "")

let float_of_token ln what s =
  match float_of_string_opt s with
  | Some x when Float.is_finite x -> x
  | Some _ -> fail ln "%s %S is not finite" what s
  | None -> fail ln "invalid %s %S" what s

let parse_lines lines =
  let b = Netlist.Builder.create () in
  let ids = Hashtbl.create 64 in
  let lookup ln name =
    match Hashtbl.find_opt ids name with
    | Some id -> id
    | None -> fail ln "unknown component %S" name
  in
  List.iteri
    (fun idx raw ->
      let ln = idx + 1 in
      let raw = match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let raw = match String.index_opt raw ';' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      match tokens raw with
      | [] -> ()
      | [ "component"; name; size ] ->
        if Hashtbl.mem ids name then fail ln "duplicate component %S" name;
        let size = float_of_token ln "size" size in
        if size <= 0.0 then fail ln "component %S: size must be > 0" name;
        Hashtbl.replace ids name (Netlist.Builder.add_component b ~name ~size ())
      | "component" :: _ -> fail ln "component syntax: component <name> <size>"
      | [ "wire"; n1; n2 ] | [ "wire"; n1; n2; _ ] as toks ->
        let weight =
          match toks with
          | [ _; _; _; w ] ->
            let w = float_of_token ln "weight" w in
            if w <= 0.0 then fail ln "wire weight must be > 0";
            w
          | _ -> 1.0
        in
        let j1 = lookup ln n1 and j2 = lookup ln n2 in
        if j1 = j2 then fail ln "self-loop wire on %S" n1;
        Netlist.Builder.add_wire b j1 j2 ~weight ()
      | "wire" :: _ -> fail ln "wire syntax: wire <name1> <name2> [weight]"
      | cmd :: _ -> fail ln "unknown declaration %S" cmd)
    lines;
  Netlist.Builder.build b

let parse_string s =
  match parse_lines (String.split_on_char '\n' s) with
  | nl -> Ok nl
  | exception Fail e -> Error e

let parse_channel ic =
  let buf = Buffer.create 4096 in
  match
    try
      while true do
        Buffer.add_channel buf ic 1
      done
    with End_of_file -> ()
  with
  | () -> (
    match parse_string (Buffer.contents buf) with
    | Ok nl -> Ok nl
    | Error e -> Error (`Parse e))
  | exception Sys_error msg -> Error (`Io msg)

let parse_file path =
  match open_in path with
  | exception Sys_error msg -> Error (`Io msg)
  | ic -> Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> parse_channel ic)
