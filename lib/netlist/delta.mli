(** Netlist deltas: typed engineering-change-order (ECO) edits.

    A delta is an ordered list of edits against an existing {!Netlist.t}:
    add/remove a component, add/remove a wire, or tighten a timing
    budget between two components.  Deltas reference components by
    {e name}, not id, because removal renumbers the dense id space.

    Everything here is total: parsing and application return structured
    errors instead of raising.  [apply] also returns the id remap needed
    to carry an incumbent assignment across the edit. *)

type op =
  | Add_component of { name : string; size : float }
  | Remove_component of { name : string }
      (** Removing a component also removes its incident wires and any
          timing budgets that mention it. *)
  | Add_wire of { u : string; v : string; weight : float }
      (** Accumulates onto an existing wire, like parallel wires in
          {!Netlist.make}. *)
  | Remove_wire of { u : string; v : string }
      (** Removes the whole merged wire between the pair; it must exist. *)
  | Retime of { src : string; dst : string; budget : float }
      (** Directed timing budget [src -> dst].  Tighten-only: when a
          budget already exists for the pair, the smaller one wins
          (the semantics of [Constraints.add]). *)

type t = op list

type error = {
  at : int;  (** 1-based op index (validation) or source line (parsing). *)
  what : string;  (** The offending op or raw line. *)
  reason : string;
}

val error_to_string : error -> string
val op_to_string : op -> string

val to_string : t -> string
(** One op per line, in the concrete syntax accepted by {!parse_string}. *)

val parse_string : string -> (t, error) result
(** Concrete syntax, one op per line; [#] and [;] start comments:
    {v
    add <name> <size>
    remove <name>
    wire <u> <v> [weight]        (weight defaults to 1)
    unwire <u> <v>
    retime <src> <dst> <budget>
    v} *)

type applied = {
  netlist : Netlist.t;  (** The edited netlist. *)
  new_of_old : int array;  (** old id -> new id, [-1] if removed. *)
  old_of_new : int array;  (** new id -> old id, [-1] if freshly added. *)
  touched : int list;
      (** New ids whose incident wires or budgets changed (sorted, no
          duplicates).  Eta rows outside this set are unaffected by a
          dimension-preserving delta. *)
  retimes : (int * int * float) list;
      (** Surviving directed budgets [(src, dst, budget)] in new ids. *)
  dims_changed : bool;
      (** True iff any component was added or removed.  When false, ids
          are unchanged and Q/eta can be patched strictly in place. *)
}

val validate : Netlist.t -> t -> (unit, error) result
(** Rejects structurally impossible edit sequences: duplicate or unknown
    component names, self-loops, removing a wire that does not exist,
    non-positive sizes/weights/budgets, non-finite numbers. *)

val apply : Netlist.t -> t -> (applied, error) result
(** Validates and applies.  [Ok] implies [validate] would succeed. *)
