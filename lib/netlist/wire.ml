type t = { u : int; v : int; weight : float }

let make j1 j2 ~weight =
  if j1 < 0 || j2 < 0 then invalid_arg "Wire.make: negative component id";
  if j1 = j2 then
    invalid_arg (Printf.sprintf "Wire.make: self-loop on component %d" j1);
  if weight <= 0.0 then
    invalid_arg (Printf.sprintf "Wire.make %d-%d: weight must be > 0 (got %g)" j1 j2 weight);
  if j1 < j2 then { u = j1; v = j2; weight } else { u = j2; v = j1; weight }

let u t = t.u
let v t = t.v
let weight t = t.weight

let other t j =
  if j = t.u then t.v
  else if j = t.v then t.u
  else invalid_arg (Printf.sprintf "Wire.other: %d is not an endpoint of %d-%d" j t.u t.v)

let equal a b = a.u = b.u && a.v = b.v && a.weight = b.weight

let compare a b =
  match Int.compare a.u b.u with
  | 0 -> ( match Int.compare a.v b.v with 0 -> Float.compare a.weight b.weight | c -> c)
  | c -> c

let pp ppf t = Format.fprintf ppf "%d--%d(w=%g)" t.u t.v t.weight
