(** Multi-terminal nets and their two-terminal expansions.

    Real circuit netlists connect components through multi-terminal
    nets (hyperedges); the paper's interconnection matrix {m A} is a
    two-terminal (graph) model, {m a_{j_1 j_2}} counting the
    interconnections between a component pair.  This module provides
    the standard expansions used to feed hypergraph netlists into
    graph-based partitioners:

    - {e clique}: a k-terminal net becomes {m k(k-1)/2} wires, each of
      weight {m w·2/k} (so the total weight a net contributes grows
      like {m k-1}, the usual normalization that keeps large nets from
      dominating);
    - {e star}: each terminal connects to the net's first terminal
      (the driver) with weight {m w} — linear in {m k}, exact for
      2-terminal nets. *)

type net = { name : string; terminals : int list; weight : float }
(** A hyperedge over component ids; [weight] defaults to 1 in
    constructors.  At least two distinct terminals are required. *)

type t
(** An immutable list of nets over [n] components. *)

val make : n:int -> net list -> t
(** @raise Invalid_argument if a net has fewer than two distinct
    terminals, an out-of-range terminal, or non-positive weight.
    Duplicate terminals within a net are merged. *)

val n : t -> int
val nets : t -> net list
val net_count : t -> int
val pin_count : t -> int
(** Total terminals over all nets. *)

type expansion = Clique | Star

val expand : t -> components:Component.t list -> expansion -> Netlist.t
(** Build the two-terminal netlist; parallel expanded wires merge.
    [components] supplies sizes/names and must have ids [0..n-1]. *)

val cut_nets : t -> int array -> int
(** Number of nets spanning more than one partition under an
    assignment — the hypergraph cut metric, for comparing against the
    expanded wire metrics. *)

val external_degree : t -> int array -> int
(** Sum over nets of (number of distinct partitions spanned − 1): the
    "K-1" hypergraph cut cost. *)
