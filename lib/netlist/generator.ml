type params = {
  n : int;
  wires : int;
  size_min : float;
  size_max : float;
  clusters : int;
  locality : float;
  max_multiplicity : int;
}

let default_params ~n ~wires =
  {
    n;
    wires;
    size_min = 1.0;
    size_max = 100.0;
    clusters = 20;
    locality = 0.8;
    max_multiplicity = 4;
  }

let validate p =
  if p.n < 2 then invalid_arg "Generator: need at least 2 components";
  if p.wires < 0 then invalid_arg "Generator: negative wire count";
  if p.size_min <= 0.0 || p.size_max < p.size_min then
    invalid_arg "Generator: need 0 < size_min <= size_max";
  if p.clusters < 1 then invalid_arg "Generator: need >= 1 cluster";
  if p.locality < 0.0 || p.locality > 1.0 then invalid_arg "Generator: locality not in [0,1]";
  if p.max_multiplicity < 1 then invalid_arg "Generator: max_multiplicity must be >= 1"

(* Cluster labels are a balanced random assignment so no cluster is
   empty (as long as n >= clusters). *)
let cluster_labels rng p =
  let labels = Array.init p.n (fun j -> j mod p.clusters) in
  Rng.shuffle rng labels;
  labels

let hidden_clusters rng p =
  validate p;
  cluster_labels rng p

let generate ?(name_prefix = "c") ?pool rng p =
  validate p;
  let labels = cluster_labels rng p in
  let by_cluster = Array.make p.clusters [] in
  Array.iteri (fun j c -> by_cluster.(c) <- j :: by_cluster.(c)) labels;
  let by_cluster = Array.map Array.of_list by_cluster in
  let b = Netlist.Builder.create () in
  for j = 0 to p.n - 1 do
    let size = Rng.log_uniform rng ~lo:p.size_min ~hi:p.size_max in
    ignore (Netlist.Builder.add_component b ~name:(Printf.sprintf "%s%d" name_prefix j) ~size ())
  done;
  (* Draw endpoint pairs until the interconnection budget is spent.
     Intra-cluster picks need a cluster with >= 2 members. *)
  let pick_pair () =
    let intra = Rng.float rng 1.0 < p.locality in
    if intra then begin
      let rec find_cluster tries =
        let c = by_cluster.(Rng.int rng p.clusters) in
        if Array.length c >= 2 || tries > 50 then c else find_cluster (tries + 1)
      in
      let c = find_cluster 0 in
      if Array.length c >= 2 then begin
        let a = Rng.pick rng c in
        let rec other () =
          let x = Rng.pick rng c in
          if x = a then other () else x
        in
        (a, other ())
      end
      else
        let a = Rng.int rng p.n in
        let rec other () =
          let x = Rng.int rng p.n in
          if x = a then other () else x
        in
        (a, other ())
    end
    else begin
      let a = Rng.int rng p.n in
      let rec other () =
        let x = Rng.int rng p.n in
        if x = a then other () else x
      in
      (a, other ())
    end
  in
  let remaining = ref p.wires in
  while !remaining > 0 do
    let j1, j2 = pick_pair () in
    let w = 1 + Rng.int rng p.max_multiplicity in
    let w = min w !remaining in
    Netlist.Builder.add_wire b j1 j2 ~weight:(float_of_int w) ();
    remaining := !remaining - w
  done;
  Netlist.Builder.build ?pool b
