type t = {
  name : string;
  components : int;
  wire_pairs : int;
  interconnections : float;
  total_size : float;
  size_min : float;
  size_max : float;
  degree_max : int;
  degree_mean : float;
}

let of_netlist ?(name = "") nl =
  let n = Netlist.n nl in
  let size_min = ref infinity and size_max = ref 0.0 in
  let deg_max = ref 0 and deg_sum = ref 0 in
  for j = 0 to n - 1 do
    let s = Netlist.size nl j in
    if s < !size_min then size_min := s;
    if s > !size_max then size_max := s;
    let d = Netlist.degree nl j in
    if d > !deg_max then deg_max := d;
    deg_sum := !deg_sum + d
  done;
  {
    name;
    components = n;
    wire_pairs = Netlist.wire_count nl;
    interconnections = Netlist.total_wire_weight nl;
    total_size = Netlist.total_size nl;
    size_min = (if n = 0 then 0.0 else !size_min);
    size_max = !size_max;
    degree_max = !deg_max;
    degree_mean = (if n = 0 then 0.0 else float_of_int !deg_sum /. float_of_int n);
  }

let size_span_orders t =
  if t.size_min <= 0.0 then 0.0 else log10 (t.size_max /. t.size_min)

let pp ppf t =
  Format.fprintf ppf
    "%s: %d components, %d wire pairs (%.0f wires), size total %.1f [%.2f..%.1f], deg max %d mean %.1f"
    t.name t.components t.wire_pairs t.interconnections t.total_size t.size_min t.size_max
    t.degree_max t.degree_mean

let pp_table ppf stats =
  Format.fprintf ppf "%-8s %12s %10s %12s %10s %10s@."
    "ckt" "# components" "# wires" "total size" "size span" "mean deg";
  List.iter
    (fun t ->
      Format.fprintf ppf "%-8s %12d %10.0f %12.0f %9.1fx %10.1f@."
        t.name t.components t.interconnections t.total_size
        (t.size_max /. (if t.size_min > 0.0 then t.size_min else 1.0))
        t.degree_mean)
    stats
