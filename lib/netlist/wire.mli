(** Wires (interconnections) between components.

    A wire aggregates the paper's interconnection matrix entries: the
    sparse {m N×N} matrix {m A} has {m a_{j_1 j_2}} = number of
    interconnections between components {m j_1} and {m j_2}.  We store
    each connected unordered pair once, with a strictly positive
    [weight] equal to the number (or total width) of wires between the
    two endpoints.  Self-loops are rejected: a wire internal to a
    component has no inter-partition cost under any assignment. *)

type t = private {
  u : int;        (** smaller endpoint id *)
  v : int;        (** larger endpoint id; [u < v] *)
  weight : float; (** {m a_{uv}}; strictly positive *)
}

val make : int -> int -> weight:float -> t
(** [make j1 j2 ~weight] normalizes endpoint order.
    @raise Invalid_argument on self-loop, negative id or
    non-positive weight. *)

val u : t -> int
val v : t -> int
val weight : t -> float

val other : t -> int -> int
(** [other w j] is the endpoint of [w] that is not [j].
    @raise Invalid_argument if [j] is not an endpoint. *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Lexicographic on [(u, v, weight)]. *)

val pp : Format.formatter -> t -> unit
