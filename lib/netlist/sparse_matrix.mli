(** Mutable sparse matrices over [float].

    Row-major sparse storage used for the paper's interconnection
    matrix {m A} and timing-budget matrix {m D_C}, both of which are
    very sparse for real circuits (section 4.3: "if the interconnection
    matrix A is sparse, the cost matrix Q-hat will be sparse").  Entries
    that were never set read back as the matrix's [default]
    (0 for {m A}, +inf for {m D_C}). *)

type t

val create : ?default:float -> rows:int -> cols:int -> unit -> t
(** Fresh matrix with every entry equal to [default] (default [0.]). *)

val rows : t -> int
val cols : t -> int
val default : t -> float

val get : t -> int -> int -> float
(** [get m r c]; out-of-range indices raise [Invalid_argument]. *)

val set : t -> int -> int -> float -> unit
(** [set m r c x] stores [x].  Storing the default erases the entry. *)

val add : t -> int -> int -> float -> unit
(** [add m r c x] is [set m r c (get m r c + x)] — but note that for a
    matrix whose default is not finite this only makes sense on
    explicitly set entries. *)

val mem : t -> int -> int -> bool
(** Whether the entry is explicitly stored (differs from default). *)

val nnz : t -> int
(** Number of explicitly stored entries. *)

val iter : t -> (int -> int -> float -> unit) -> unit
(** Iterate over stored entries in row-major, column-sorted order. *)

val iter_row : t -> int -> (int -> float -> unit) -> unit
(** Iterate over the stored entries of one row in column order. *)

val row_entries : t -> int -> (int * float) list
(** Stored entries of one row, column-sorted. *)

val fold : t -> init:'a -> f:('a -> int -> int -> float -> 'a) -> 'a

val copy : t -> t

val to_dense : t -> float array array
(** Fully materialized matrix; intended for small matrices in tests
    and for the worked example of the paper's section 3.3. *)

val of_dense : ?default:float -> float array array -> t
(** @raise Invalid_argument on ragged input. *)

val equal : t -> t -> bool
(** Structural equality of the represented (dense) contents, including
    defaults. *)
