(* xoshiro256** seeded through splitmix64.  The constants and update
   rules follow the published reference implementations; the only
   subtlety is that OCaml ints are 63-bit, so we keep state in int64
   and expose 62-bit non-negative ints. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let ( +% ) = Int64.add and ( *% ) = Int64.mul in
  let z = !state +% 0x9E3779B97F4A7C15L in
  state := z;
  let z = (Int64.logxor z (Int64.shift_right_logical z 30)) *% 0xBF58476D1CE4E5B9L in
  let z = (Int64.logxor z (Int64.shift_right_logical z 27)) *% 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let bits62 t = Int64.to_int (Int64.shift_right_logical (next t) 2)

let split t =
  let seed = bits62 t in
  create seed

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max = 0x3FFFFFFFFFFFFFFF in
  let limit = max - (max mod bound) in
  let rec draw () =
    let v = bits62 t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next t) 1L = 1L

let log_uniform t ~lo ~hi =
  if lo <= 0.0 || hi < lo then invalid_arg "Rng.log_uniform: need 0 < lo <= hi";
  let llo = log lo and lhi = log hi in
  exp (llo +. float t (lhi -. llo))

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let permutation t n =
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  arr
