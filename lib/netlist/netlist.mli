(** Circuits: components plus weighted interconnections.

    This is the circuit description of the paper's section 2.1 (input
    part I): a set {m J} of {m N} components with sizes {m s_j} and the
    sparse interconnection matrix {m A}.  The structure is immutable
    once built; construction goes through {!Builder} or {!make}.
    Parallel wires between the same pair of components are merged by
    summing their weights, exactly as {m a_{j_1 j_2}} counts the number
    of interconnections.

    Adjacency is stored as struct-of-arrays CSR: a flat row-offset
    array plus flat neighbor/weight arrays ({!adj_offsets},
    {!adj_targets}, {!adj_weights}).  Rows are neighbor-sorted, in the
    exact order the old boxed [(int * float) array array] layout used,
    so solver float summations are bit-identical.  Construction is a
    counting pass + prefix sum + in-order fill (no per-row sort) and
    can be fanned over a {!Qbpart_pool.Dompool.t} for large instances. *)

type t

(** {1 Construction} *)

module Builder : sig
  type netlist := t
  type t

  val create : unit -> t

  val add_component : t -> ?name:string -> size:float -> unit -> int
  (** Returns the new component's dense id.  [name] defaults to
      ["c<id>"].
      @raise Invalid_argument on duplicate name or [size <= 0]. *)

  val add_wire : t -> int -> int -> ?weight:float -> unit -> unit
  (** [add_wire b j1 j2 ~weight ()] adds [weight] (default [1.])
      interconnections between two existing, distinct components;
      repeated calls accumulate.
      @raise Invalid_argument on unknown ids, self-loop, or
      non-positive weight. *)

  val build : ?pool:Qbpart_pool.Dompool.t -> t -> netlist
end

val make : components:Component.t list -> wires:Wire.t list -> t
(** Direct construction.  Component ids must be exactly [0..n-1] in
    order; wires must reference valid ids.  Parallel wires are merged.
    @raise Invalid_argument otherwise. *)

val make_parallel :
  pool:Qbpart_pool.Dompool.t -> components:Component.t list -> wires:Wire.t list -> t
(** Like {!make}, but fans the CSR adjacency construction over [pool]
    when the instance is large enough to amortize the fan-out.  The
    result is bit-identical to {!make} for any pool size. *)

(** {1 Components} *)

val n : t -> int
(** Number of components, the paper's {m N}. *)

val component : t -> int -> Component.t
val components : t -> Component.t array
(** The backing array is a copy; mutation does not affect [t]. *)

val size : t -> int -> float
(** [size t j] is {m s_j}. *)

val sizes : t -> float array
(** Fresh array of all sizes, indexed by id. *)

val total_size : t -> float
val find_by_name : t -> string -> int option

(** {1 Wires} *)

val wires : t -> Wire.t array
(** All merged wires, each unordered pair at most once, sorted.  The
    backing array is a copy. *)

val iter_wires : t -> (Wire.t -> unit) -> unit
(** Iterate the merged wires in sorted order without copying the
    backing array — use this on the evaluation paths of large
    instances. *)

val fold_wires : t -> init:'a -> f:('a -> Wire.t -> 'a) -> 'a
(** Fold over the merged wires in sorted order without copying. *)

val wire_count : t -> int
(** Number of distinct connected pairs. *)

val total_wire_weight : t -> float
(** Sum of all wire weights = total number of interconnections; the
    paper's "# of wires" column of Table I. *)

(** {2 CSR adjacency}

    The flat arrays below are shared with [t] and must not be mutated.
    Row [j] of the adjacency is
    [adj_targets.(adj_offsets.(j) .. adj_offsets.(j+1) - 1)] with
    matching weights in [adj_weights]; rows are neighbor-sorted.  This
    is the hot path of every solver: iterate with an index loop, no
    closures, no tuple boxing. *)

val adj_offsets : t -> int array
(** Row offsets, length [n + 1]. *)

val adj_targets : t -> int array
(** Neighbor ids, length [2 * wire_count], per-row ascending. *)

val adj_weights : t -> float array
(** Unboxed wire weights aligned with {!adj_targets}. *)

val adj : t -> int -> (int * float) array
(** [adj t j] are [(neighbor, weight)] pairs for every component wired
    to [j], neighbor-sorted.  Compatibility view over the CSR row: the
    returned array is freshly allocated on every call, so prefer the
    flat accessors above in hot loops. *)

val degree : t -> int -> int
(** Number of distinct neighbors. *)

val connection : t -> int -> int -> float
(** [connection t j1 j2] is {m a_{j_1 j_2}} (0 if unwired or equal). *)

val connection_matrix : t -> Sparse_matrix.t
(** The full symmetric {m A} as a fresh sparse matrix (both triangles
    populated). *)

(** {1 Misc} *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** One-line summary. *)
