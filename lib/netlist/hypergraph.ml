type net = { name : string; terminals : int list; weight : float }
type t = { n : int; nets : net list }

let normalize_net ~n net =
  if net.weight <= 0.0 || Float.is_nan net.weight then
    invalid_arg (Printf.sprintf "Hypergraph: net %S has weight %g" net.name net.weight);
  let terminals = List.sort_uniq Int.compare net.terminals in
  List.iter
    (fun t ->
      if t < 0 || t >= n then
        invalid_arg (Printf.sprintf "Hypergraph: net %S terminal %d out of range" net.name t))
    terminals;
  if List.length terminals < 2 then
    invalid_arg (Printf.sprintf "Hypergraph: net %S needs >= 2 distinct terminals" net.name);
  { net with terminals }

let make ~n nets =
  if n < 0 then invalid_arg "Hypergraph.make: negative n";
  { n; nets = List.map (normalize_net ~n) nets }

let n t = t.n
let nets t = t.nets
let net_count t = List.length t.nets
let pin_count t = List.fold_left (fun acc net -> acc + List.length net.terminals) 0 t.nets

type expansion = Clique | Star

let expand t ~components expansion =
  let wires = ref [] in
  let add u v w = if u <> v then wires := Wire.make u v ~weight:w :: !wires in
  List.iter
    (fun net ->
      let k = List.length net.terminals in
      match expansion with
      | Star ->
        (match net.terminals with
        | driver :: rest -> List.iter (fun sink -> add driver sink net.weight) rest
        | [] -> assert false)
      | Clique ->
        let w = net.weight *. 2.0 /. float_of_int k in
        let rec pairs = function
          | [] -> ()
          | u :: rest ->
            List.iter (fun v -> add u v w) rest;
            pairs rest
        in
        pairs net.terminals)
    t.nets;
  Netlist.make ~components ~wires:!wires

let partitions_spanned net assignment =
  List.sort_uniq Int.compare (List.map (fun j -> assignment.(j)) net.terminals)

let cut_nets t assignment =
  List.fold_left
    (fun acc net -> if List.length (partitions_spanned net assignment) > 1 then acc + 1 else acc)
    0 t.nets

let external_degree t assignment =
  List.fold_left
    (fun acc net -> acc + List.length (partitions_spanned net assignment) - 1)
    0 t.nets
