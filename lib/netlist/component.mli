(** Circuit components.

    A component is a functional block of the system being partitioned
    (paper section 2.1, item I.1-2).  Each component [j] carries a
    silicon-area demand [size] (the paper's {m s_j}); in the industrial
    examples sizes range over about two orders of magnitude within one
    circuit. *)

type t = private {
  id : int;      (** dense index in [0, n); assigned by the netlist *)
  name : string; (** human-readable label, unique within a netlist *)
  size : float;  (** silicon-area demand {m s_j}; strictly positive *)
}

val make : id:int -> name:string -> size:float -> t
(** @raise Invalid_argument if [size <= 0] or [id < 0]. *)

val id : t -> int
val name : t -> string
val size : t -> float

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
