(** Circuit statistics in the shape of the paper's Table I. *)

type t = {
  name : string;
  components : int;          (** {m N} *)
  wire_pairs : int;          (** distinct connected pairs *)
  interconnections : float;  (** total wire weight, Table I "# of wires" *)
  total_size : float;
  size_min : float;
  size_max : float;
  degree_max : int;
  degree_mean : float;
}

val of_netlist : ?name:string -> Netlist.t -> t
(** Compute statistics.  [name] defaults to [""]. *)

val size_span_orders : t -> float
(** [log10 (size_max / size_min)] — the paper notes sizes "ranging
    about 2 orders of magnitude in the same circuit". *)

val pp : Format.formatter -> t -> unit
val pp_table : Format.formatter -> t list -> unit
(** Render several circuits as an aligned ASCII table (Table I style,
    one row per circuit). *)
