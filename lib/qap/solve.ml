module Burkard = Qbpart_core.Burkard
module Hungarian = Qbpart_lap.Hungarian

type result = {
  permutation : int array;
  cost : float;
  method_ : [ `Burkard | `Burkard_2opt | `Identity ];
}

let two_opt (qap : Qap.t) phi =
  let phi = Array.copy phi in
  let n = qap.Qap.n in
  let improved = ref true in
  while !improved do
    improved := false;
    for j1 = 0 to n - 1 do
      for j2 = j1 + 1 to n - 1 do
        let before = Qap.cost qap phi in
        let tmp = phi.(j1) in
        phi.(j1) <- phi.(j2);
        phi.(j2) <- tmp;
        if Qap.cost qap phi < before -. 1e-9 then improved := true
        else begin
          let tmp = phi.(j1) in
          phi.(j1) <- phi.(j2);
          phi.(j2) <- tmp
        end
      done
    done
  done;
  phi

let solve ?(iterations = 100) ?(seed = 1) ?(restarts = 4) qap =
  let problem = Qap.to_problem qap in
  let config = { Burkard.Config.default with iterations; seed } in
  let result = Burkard.solve ~config problem in
  let burkard_phi =
    match result.Burkard.best_feasible with
    | Some (a, _) when Qap.is_permutation qap a -> Some a
    | _ ->
      if Qap.is_permutation qap result.Burkard.best then Some result.Burkard.best else None
  in
  (* multi-start 2-opt: refine the Burkard solution and a few random
     permutations, keep the cheapest (Burkard & Bonniger finish their
     QAP runs with exchange improvement too) *)
  let rng = Qbpart_netlist.Rng.create (seed + 77) in
  let starts =
    (match burkard_phi with Some phi -> [ (`FromBurkard, phi) ] | None -> [])
    @ List.init (max 1 restarts) (fun _ ->
          (`Random, Qbpart_netlist.Rng.permutation rng qap.Qap.n))
  in
  let refined =
    List.map (fun (origin, phi) -> (origin, two_opt qap phi)) starts
  in
  let best =
    List.fold_left
      (fun acc (origin, phi) ->
        let c = Qap.cost qap phi in
        match acc with
        | Some (_, _, c') when c' <= c -> acc
        | _ -> Some (origin, phi, c))
      None refined
  in
  match best with
  | Some (origin, phi, cost) ->
    let method_ =
      match (origin, burkard_phi) with
      | `FromBurkard, Some b when phi = b -> `Burkard
      | `FromBurkard, _ -> `Burkard_2opt
      | `Random, _ -> `Identity
    in
    { permutation = phi; cost; method_ }
  | None -> assert false

let hungarian_lower_bound (qap : Qap.t) =
  let n = qap.Qap.n in
  let min_dist_from = Array.make n infinity in
  for l = 0 to n - 1 do
    for l' = 0 to n - 1 do
      if l <> l' then min_dist_from.(l) <- Float.min min_dist_from.(l) qap.Qap.dist.(l).(l')
    done;
    if min_dist_from.(l) = infinity then min_dist_from.(l) <- 0.0
  done;
  let flow_out =
    Array.init n (fun j ->
        let s = ref 0.0 in
        for j' = 0 to n - 1 do
          s := !s +. qap.Qap.flow.(j).(j')
        done;
        !s)
  in
  let cost = Array.init n (fun j -> Array.init n (fun l -> flow_out.(j) *. min_dist_from.(l))) in
  let _, total = Hungarian.solve cost in
  total
