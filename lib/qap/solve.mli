(** QAP solvers built on the repository's machinery. *)

type result = {
  permutation : int array;
  cost : float;
  method_ : [ `Burkard | `Burkard_2opt | `Identity ];
}

val solve : ?iterations:int -> ?seed:int -> ?restarts:int -> Qap.t -> result
(** Reduce to PP(1,1) via {!Qap.to_problem}, run the generalized
    Burkard heuristic ([iterations] defaults to 100), project the best
    capacity-feasible solution back to a permutation, and finish with
    2-opt (pairwise exchange) local search — Burkard's own post-pass —
    applied both to the Burkard solution and to [restarts] (default 4)
    random multi-start permutations; the cheapest result wins.
    [method_] records whether the winner descended from the Burkard
    trajectory or from a random restart ([`Identity]). *)

val two_opt : Qap.t -> int array -> int array
(** Exchange-based local search to a local optimum; the input is not
    modified. *)

val hungarian_lower_bound : Qap.t -> float
(** A (weak) lower bound: the linear assignment over the
    min-possible pairwise interaction costs
    {m c_{jl} = Σ_{j'} flow(j,j') · min_{l'} dist(l, l')} — useful for
    sanity checks in tests. *)
