module Rng = Qbpart_netlist.Rng
module Netlist = Qbpart_netlist.Netlist
module Topology = Qbpart_topology.Topology
module Grid = Qbpart_topology.Grid
module Problem = Qbpart_core.Problem

type t = { n : int; flow : float array array; dist : float array array }

let check_square what n mat =
  if Array.length mat <> n then invalid_arg (Printf.sprintf "Qap.make: %s not %dx%d" what n n);
  Array.iteri
    (fun r row ->
      if Array.length row <> n then
        invalid_arg (Printf.sprintf "Qap.make: %s row %d has wrong length" what r);
      Array.iteri
        (fun c x ->
          if x < 0.0 || Float.is_nan x then
            invalid_arg (Printf.sprintf "Qap.make: %s[%d][%d] = %g" what r c x))
        row)
    mat

let make ~flow ~dist =
  let n = Array.length flow in
  if n = 0 then invalid_arg "Qap.make: empty instance";
  check_square "flow" n flow;
  check_square "dist" n dist;
  Array.iteri
    (fun j row ->
      if row.(j) <> 0.0 then
        invalid_arg (Printf.sprintf "Qap.make: flow diagonal at %d is %g, must be 0" j row.(j)))
    flow;
  { n; flow = Array.map Array.copy flow; dist = Array.map Array.copy dist }

let cost t phi =
  let total = ref 0.0 in
  for j1 = 0 to t.n - 1 do
    for j2 = 0 to t.n - 1 do
      total := !total +. (t.flow.(j1).(j2) *. t.dist.(phi.(j1)).(phi.(j2)))
    done
  done;
  !total

let is_permutation t phi =
  Array.length phi = t.n
  &&
  let seen = Array.make t.n false in
  Array.for_all
    (fun i ->
      if i < 0 || i >= t.n || seen.(i) then false
      else begin
        seen.(i) <- true;
        true
      end)
    phi

let to_problem t =
  for i = 0 to t.n - 1 do
    for j = i + 1 to t.n - 1 do
      if t.dist.(i).(j) <> t.dist.(j).(i) then
        invalid_arg "Qap.to_problem: asymmetric distance matrix"
    done
  done;
  let b = Netlist.Builder.create () in
  for j = 0 to t.n - 1 do
    ignore (Netlist.Builder.add_component b ~name:(Printf.sprintf "f%d" j) ~size:1.0 ())
  done;
  for j1 = 0 to t.n - 1 do
    for j2 = j1 + 1 to t.n - 1 do
      let w = t.flow.(j1).(j2) +. t.flow.(j2).(j1) in
      if w > 0.0 then Netlist.Builder.add_wire b j1 j2 ~weight:w ()
    done
  done;
  let netlist = Netlist.Builder.build b in
  let topology =
    Topology.make
      ~capacities:(Array.make t.n 1.0)
      ~b:t.dist
      ~d:(Array.make_matrix t.n t.n 0.0)
      ()
  in
  Problem.make netlist topology

let random rng ~n ?(density = 0.5) () =
  if n < 2 then invalid_arg "Qap.random: need n >= 2";
  if density <= 0.0 || density > 1.0 then invalid_arg "Qap.random: density in (0,1]";
  let flow = Array.make_matrix n n 0.0 in
  for j1 = 0 to n - 1 do
    for j2 = j1 + 1 to n - 1 do
      if Rng.float rng 1.0 < density then begin
        let w = float_of_int (1 + Rng.int rng 9) in
        flow.(j1).(j2) <- w;
        flow.(j2).(j1) <- w
      end
    done
  done;
  (* locations on a near-square grid with the Manhattan metric *)
  let cols = int_of_float (ceil (sqrt (float_of_int n))) in
  let rows = (n + cols - 1) / cols in
  let full = Grid.b_of_metric Grid.Manhattan ~rows ~cols in
  let dist = Array.init n (fun i -> Array.init n (fun j -> full.(i).(j))) in
  { n; flow; dist }

let brute_force t =
  if t.n > 10 then invalid_arg "Qap.brute_force: n > 10";
  let best = ref None in
  let phi = Array.init t.n Fun.id in
  let rec permute k =
    if k = t.n then begin
      let c = cost t phi in
      match !best with
      | Some (_, c') when c' <= c -> ()
      | _ -> best := Some (Array.copy phi, c)
    end
    else
      for i = k to t.n - 1 do
        let tmp = phi.(k) in
        phi.(k) <- phi.(i);
        phi.(i) <- tmp;
        permute (k + 1);
        let tmp = phi.(k) in
        phi.(k) <- phi.(i);
        phi.(i) <- tmp
      done
  in
  permute 0;
  match !best with Some r -> r | None -> assert false
