(** Quadratic Assignment Problem — the degenerate special case of
    section 2.2.3.

    A QAP is a {m PP(α, β)} with {m M = N}, unit component sizes, unit
    partition capacities and no timing constraints: the only feasible
    assignments are permutations.  Burkard's original heuristic was
    designed for exactly this case; solving QAPs through the
    generalized machinery validates the "special case" claims of the
    paper and connects the implementation back to its source.

    Instances are the classic (flow, distance) pairs: permutation
    {m φ} costs {m Σ_{j_1 j_2} flow(j_1,j_2) · dist(φ(j_1), φ(j_2))}
    over ordered pairs. *)

type t = private {
  n : int;
  flow : float array array;  (** inter-facility flow, zero diagonal *)
  dist : float array array;  (** inter-location distance *)
}

val make : flow:float array array -> dist:float array array -> t
(** @raise Invalid_argument on non-square/mismatched matrices,
    negative entries, or a non-zero flow diagonal. *)

val cost : t -> int array -> float
(** Objective of a permutation [phi] (facility [j] at location
    [phi.(j)]), counting ordered pairs as in the QAP literature. *)

val to_problem : t -> Qbpart_core.Problem.t
(** The PP(1,1) embedding: facilities become unit-size components
    wired with weight {m flow_{j_1 j_2} + flow_{j_2 j_1}} per
    unordered pair (so that the once-per-wire objective equals the
    ordered-pair QAP objective), locations become unit-capacity
    partitions with {m B = dist}.
    @raise Invalid_argument if [dist] is asymmetric — the undirected
    wire model cannot represent direction-dependent distances. *)

val is_permutation : t -> int array -> bool

val random : Qbpart_netlist.Rng.t -> n:int -> ?density:float -> unit -> t
(** Random instance: flows uniform in 1..9 with the given [density]
    (default 0.5), distances = Manhattan metric over a near-square
    grid of [n] locations — the gate-array flavour the paper mentions. *)

val brute_force : t -> int array * float
(** Exact optimum by enumeration.
    @raise Invalid_argument if [n > 10]. *)
