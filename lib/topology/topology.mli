(** Partition topologies.

    The paper's input part II: a fixed set {m I} of {m M} partitions
    with capacities {m c_i}, an {m M×M} wiring-cost matrix {m B}
    ({m b_{i_1 i_2}} = cost of routing one wire from partition
    {m i_1} to {m i_2}) and an {m M×M} routing-delay matrix {m D}.
    The formulation assumes {e no} relationship between {m B} and
    {m D}; both are stored independently here.  Instances are
    immutable. *)

type t

val make :
  ?names:string array ->
  capacities:float array ->
  b:float array array ->
  d:float array array ->
  unit ->
  t
(** @raise Invalid_argument if dimensions disagree, a capacity is
    negative, or [b]/[d] contain negative entries.  The matrices are
    copied. *)

val m : t -> int
(** Number of partitions, the paper's {m M}. *)

val capacity : t -> int -> float
(** [capacity t i] is {m c_i}. *)

val capacities : t -> float array
(** Fresh array. *)

val total_capacity : t -> float

val b : t -> int -> int -> float
(** [b t i1 i2] is {m b_{i_1 i_2}}. *)

val d : t -> int -> int -> float
(** [d t i1 i2] is {m D(i_1, i_2)}. *)

val b_matrix : t -> float array array
val d_matrix : t -> float array array
(** Fresh copies. *)

val name : t -> int -> string
(** Defaults to ["p<i>"]. *)

val max_b_from : t -> int -> float
(** [max_b_from t i] is {m max_{i'} b_{i i'}} — used for the Burkard
    bound vector {m ω}. *)

val max_b : t -> float
(** Largest entry of {m B}. *)

val max_d : t -> float
(** Largest entry of {m D}. *)

val b_symmetric : t -> bool
val d_symmetric : t -> bool

val with_zero_b : t -> t
(** Same topology with {m B = 0}: the paper's recipe for producing an
    initial feasible solution ("use QBP algorithm with matrix B set to
    all zeros"). *)

val scale_b : t -> float -> t
(** Topology with every {m B} entry multiplied by a factor; implements
    the PP(α,β) → PP'(1,1) rescaling of section 3. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
