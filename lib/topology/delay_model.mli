(** Inter-partition routing-delay models.

    The formulation deliberately assumes no relationship between the
    wiring-cost matrix {m B} and the delay matrix {m D} (section 2.1);
    in practice {m D} is usually derived from the package geometry.
    This module provides the common derivations used by the examples
    and the experiment generator. *)

val affine_of_distance :
  base:float -> per_unit:float -> float array array -> float array array
(** [affine_of_distance ~base ~per_unit dist] maps each off-diagonal
    distance {m x} to {m base + per\_unit·x} and keeps the diagonal at
    0 (intra-partition routing is assumed to meet any budget).  Models
    a fixed driver/receiver delay plus a per-unit-length flight time.
    @raise Invalid_argument on negative [base]/[per_unit]. *)

val with_delay : Topology.t -> d:float array array -> Topology.t
(** Replace a topology's delay matrix. *)

val with_affine_delay : base:float -> per_unit:float -> Topology.t -> Topology.t
(** Replace {m D} by the affine model applied to the topology's
    current {m D} (treated as a distance matrix). *)
