type t = {
  names : string array;
  capacities : float array;
  b : float array array;
  d : float array array;
  max_b_from : float array; (* per-row max of B, precomputed for omega bounds *)
}

let copy_matrix m = Array.map Array.copy m

let check_square what m expected =
  if Array.length m <> expected then
    invalid_arg (Printf.sprintf "Topology: %s has %d rows, expected %d" what (Array.length m) expected);
  Array.iteri
    (fun r row ->
      if Array.length row <> expected then
        invalid_arg (Printf.sprintf "Topology: %s row %d has %d cols, expected %d" what r (Array.length row) expected);
      Array.iteri
        (fun c x ->
          if x < 0.0 || Float.is_nan x then
            invalid_arg (Printf.sprintf "Topology: %s[%d][%d] = %g is negative or NaN" what r c x))
        row)
    m

let make ?names ~capacities ~b ~d () =
  let m = Array.length capacities in
  if m = 0 then invalid_arg "Topology: need at least one partition";
  Array.iteri
    (fun i c ->
      if c < 0.0 || Float.is_nan c then
        invalid_arg (Printf.sprintf "Topology: capacity %d = %g is negative or NaN" i c))
    capacities;
  check_square "B" b m;
  check_square "D" d m;
  let names =
    match names with
    | None -> Array.init m (fun i -> Printf.sprintf "p%d" i)
    | Some ns ->
      if Array.length ns <> m then invalid_arg "Topology: names length mismatch";
      Array.copy ns
  in
  let b = copy_matrix b and d = copy_matrix d in
  let max_b_from = Array.map (fun row -> Array.fold_left Float.max 0.0 row) b in
  { names; capacities = Array.copy capacities; b; d; max_b_from }

let m t = Array.length t.capacities

let capacity t i = t.capacities.(i)
let capacities t = Array.copy t.capacities
let total_capacity t = Array.fold_left ( +. ) 0.0 t.capacities
let b t i1 i2 = t.b.(i1).(i2)
let d t i1 i2 = t.d.(i1).(i2)
let b_matrix t = copy_matrix t.b
let d_matrix t = copy_matrix t.d
let name t i = t.names.(i)
let max_b_from t i = t.max_b_from.(i)
let max_b t = Array.fold_left Float.max 0.0 t.max_b_from
let max_d t = Array.fold_left (fun acc row -> Array.fold_left Float.max acc row) 0.0 t.d

let symmetric m =
  let n = Array.length m in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if m.(i).(j) <> m.(j).(i) then ok := false
    done
  done;
  !ok

let b_symmetric t = symmetric t.b
let d_symmetric t = symmetric t.d

let with_zero_b t =
  let mm = m t in
  make ~names:t.names ~capacities:t.capacities
    ~b:(Array.make_matrix mm mm 0.0)
    ~d:t.d ()

let scale_b t factor =
  if factor < 0.0 then invalid_arg "Topology.scale_b: negative factor";
  make ~names:t.names ~capacities:t.capacities
    ~b:(Array.map (Array.map (fun x -> x *. factor)) t.b)
    ~d:t.d ()

let equal a b =
  a.names = b.names && a.capacities = b.capacities && a.b = b.b && a.d = b.d

let pp ppf t =
  Format.fprintf ppf "topology<%d partitions, capacity %g, max B %g, max D %g>"
    (m t) (total_capacity t) (max_b t) (max_d t)
