(** Grid-shaped partition topologies.

    The paper's experiments use 16 partitions; its worked example
    (Figure 1) uses a 2×2 array where "B and D are just Manhattan
    distance matrices derived from the locations of the partitions
    assuming adjacent partitions are distance 1 apart".  This module
    builds such grids, with a choice of wiring-cost metric so the
    quadratic term can model total wire crossings, Manhattan wire
    length, or quadratic wire length (section 2.1). *)

type metric =
  | Manhattan  (** {m b = |Δrow| + |Δcol|}: total Manhattan wire length *)
  | Squared    (** {m b = (Manhattan)²}: quadratic wire length *)
  | Crossings  (** {m b = 1} iff different partitions: wire crossings *)

val b_of_metric : metric -> rows:int -> cols:int -> float array array
(** The {m M×M} cost matrix for a row-major grid ({m M = rows·cols}). *)

val manhattan : rows:int -> cols:int -> int -> int -> float
(** Manhattan distance between two row-major slot indices. *)

val make :
  ?metric:metric ->
  ?delay_scale:float ->
  ?names:string array ->
  rows:int ->
  cols:int ->
  capacity:float ->
  unit ->
  Topology.t
(** Uniform-capacity grid.  Partition {m i} sits at row [i / cols],
    column [i mod cols]; names default to ["r<r>c<c>"].  The delay
    matrix is Manhattan distance times [delay_scale] (default 1.0)
    regardless of [metric] — the routing delay between slots is
    distance-driven even when the cost objective is not.
    @raise Invalid_argument if [rows], [cols] or [capacity] is not
    positive. *)

val make_capacities :
  ?metric:metric ->
  ?delay_scale:float ->
  rows:int ->
  cols:int ->
  capacities:float array ->
  unit ->
  Topology.t
(** Per-slot capacities (length must be [rows * cols]). *)

val slot : cols:int -> int -> int * int
(** [slot ~cols i] is [(row, col)] of slot [i]. *)

val index : cols:int -> row:int -> col:int -> int
(** Inverse of {!slot}. *)
