type metric = Manhattan | Squared | Crossings

let slot ~cols i = (i / cols, i mod cols)
let index ~cols ~row ~col = (row * cols) + col

let manhattan ~rows ~cols i1 i2 =
  if i1 < 0 || i1 >= rows * cols || i2 < 0 || i2 >= rows * cols then
    invalid_arg "Grid.manhattan: slot out of range";
  let r1, c1 = slot ~cols i1 and r2, c2 = slot ~cols i2 in
  float_of_int (abs (r1 - r2) + abs (c1 - c2))

let b_of_metric metric ~rows ~cols =
  let m = rows * cols in
  Array.init m (fun i1 ->
      Array.init m (fun i2 ->
          let d = manhattan ~rows ~cols i1 i2 in
          match metric with
          | Manhattan -> d
          | Squared -> d *. d
          | Crossings -> if i1 = i2 then 0.0 else 1.0))

let default_names ~rows ~cols =
  Array.init (rows * cols) (fun i ->
      let r, c = slot ~cols i in
      Printf.sprintf "r%dc%d" r c)

let make_capacities ?(metric = Manhattan) ?(delay_scale = 1.0) ~rows ~cols ~capacities () =
  if rows <= 0 || cols <= 0 then invalid_arg "Grid.make: rows and cols must be positive";
  if delay_scale < 0.0 then invalid_arg "Grid.make: negative delay_scale";
  if Array.length capacities <> rows * cols then
    invalid_arg "Grid.make_capacities: capacities length must be rows*cols";
  let b = b_of_metric metric ~rows ~cols in
  let d =
    Array.map (Array.map (fun x -> x *. delay_scale)) (b_of_metric Manhattan ~rows ~cols)
  in
  Topology.make ~names:(default_names ~rows ~cols) ~capacities ~b ~d ()

let make ?metric ?delay_scale ?names ~rows ~cols ~capacity () =
  if capacity <= 0.0 then invalid_arg "Grid.make: capacity must be positive";
  let t =
    make_capacities ?metric ?delay_scale ~rows ~cols
      ~capacities:(Array.make (rows * cols) capacity)
      ()
  in
  match names with
  | None -> t
  | Some names ->
    Topology.make ~names ~capacities:(Topology.capacities t) ~b:(Topology.b_matrix t)
      ~d:(Topology.d_matrix t) ()
