let affine_of_distance ~base ~per_unit dist =
  if base < 0.0 || per_unit < 0.0 then
    invalid_arg "Delay_model.affine_of_distance: negative coefficient";
  Array.mapi
    (fun i row ->
      Array.mapi (fun j x -> if i = j then 0.0 else base +. (per_unit *. x)) row)
    dist

let with_delay t ~d =
  Topology.make
    ~names:(Array.init (Topology.m t) (Topology.name t))
    ~capacities:(Topology.capacities t) ~b:(Topology.b_matrix t) ~d ()

let with_affine_delay ~base ~per_unit t =
  with_delay t ~d:(affine_of_distance ~base ~per_unit (Topology.d_matrix t))
