module Netlist = Qbpart_netlist.Netlist
module Topology = Qbpart_topology.Topology
module Constraints = Qbpart_timing.Constraints
module Check = Qbpart_timing.Check
module Assignment = Qbpart_partition.Assignment
module Evaluate = Qbpart_partition.Evaluate
module Validate = Qbpart_partition.Validate

type selection = Scan | Buckets

type config = { max_passes : int; epsilon : float; selection : selection }

let default_config = { max_passes = 50; epsilon = 1e-9; selection = Buckets }

type result = {
  assignment : Assignment.t;
  cost : float;
  passes : int;
  moves : int;
  interrupted : bool;
}

let solve ?(config = default_config) ?p ?alpha ?beta ?constraints
    ?(should_stop = fun () -> false) nl topo ~initial =
  (match Validate.check ?constraints nl topo initial with
  | [] -> ()
  | issue :: _ ->
    invalid_arg
      (Format.asprintf "Gfm.solve: initial solution infeasible: %a" Validate.pp_issue issue));
  let n = Netlist.n nl and m = Topology.m topo in
  let gains = Gains.create ?p ?alpha ?beta nl topo initial in
  let a = Gains.assignment gains in
  let locked = Array.make n false in
  let timing_ok j target =
    match constraints with
    | None -> true
    | Some c ->
      Check.placement_ok c topo ~j ~at:target ~where:(fun j' ->
          if j' = j then None else Some a.(j'))
  in
  let buckets =
    match config.selection with
    | Buckets -> Some (Buckets.create nl topo gains)
    | Scan -> None
  in
  let legal ~j ~target = Gains.move_fits gains topo ~j ~target && timing_ok j target in
  let total_moves = ref 0 in
  let passes = ref 0 in
  let interrupted = ref false in
  let stop () =
    if not !interrupted then interrupted := should_stop ();
    !interrupted
  in
  let improved = ref true in
  while !improved && !passes < config.max_passes && not (stop ()) do
    incr passes;
    improved := false;
    Array.fill locked 0 n false;
    Option.iter Buckets.reset buckets;
    let trail = ref [] in (* (j, from), most recent first *)
    let trail_len = ref 0 in
    let cum = ref 0.0 in
    let best_cum = ref 0.0 in
    let best_len = ref 0 in
    let progress = ref true in
    while !progress && not (stop ()) do
      (* best legal move among unlocked components; legality is only
         checked when a candidate actually beats the current best, so
         the common case is a cheap delta comparison.  The bucket path
         selects the same (delta, j, i)-lexicographic minimum without
         scanning the full N×M table. *)
      let selected =
        match buckets with
        | Some b -> Buckets.best_move b ~legal
        | None ->
          let best_j = ref (-1) and best_i = ref (-1) and best_d = ref infinity in
          for j = 0 to n - 1 do
            if not locked.(j) then begin
              let from = a.(j) in
              for i = 0 to m - 1 do
                if i <> from && Gains.move_delta gains ~j ~target:i < !best_d then
                  if Gains.move_fits gains topo ~j ~target:i && timing_ok j i then begin
                    best_d := Gains.move_delta gains ~j ~target:i;
                    best_j := j;
                    best_i := i
                  end
              done
            end
          done;
          if !best_j = -1 then None else Some (!best_j, !best_i, !best_d)
      in
      match selected with
      | None -> progress := false
      | Some (j, target, d) ->
        trail := (j, a.(j)) :: !trail;
        incr trail_len;
        (match buckets with
        | Some b ->
          (* lock first: the mover's own cells then skip relinking *)
          Buckets.lock b j;
          Buckets.apply_move b ~j ~target
        | None ->
          Gains.apply_move gains ~j ~target;
          locked.(j) <- true);
        incr total_moves;
        cum := !cum +. d;
        if !cum < !best_cum -. config.epsilon then begin
          best_cum := !cum;
          best_len := !trail_len
        end
    done;
    (* rewind to the best prefix *)
    let rewind = !trail_len - !best_len in
    let rec undo k trail =
      if k > 0 then
        match trail with
        | (j, from) :: rest ->
          Gains.apply_move gains ~j ~target:from;
          undo (k - 1) rest
        | [] -> assert false
    in
    undo rewind !trail;
    if !best_cum < -.config.epsilon then improved := true
  done;
  let assignment = Assignment.copy a in
  {
    assignment;
    cost = Evaluate.objective ?alpha ?beta ?p nl topo assignment;
    passes = !passes;
    moves = !total_moves;
    interrupted = !interrupted;
  }
