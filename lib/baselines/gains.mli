(** Incremental move-gain bookkeeping shared by GFM and GKL.

    Both baselines are built around "the potential gain if that
    component is moved to the corresponding partition" (paper
    section 5).  This module maintains, for every component [j] and
    partition [i], the exact change in the equation-(1) objective of
    moving [j] to [i] — the {m (M-1)} gain entries of GFM, stored as a
    dense {m N×M} delta table with [delta.(j).(u.(j)) = 0].

    Deltas cover the linear and quadratic terms only; timing is a hard
    move-legality filter in both baselines (violating moves are simply
    forbidden), so it never enters the gains.  All updates are
    incremental: applying a move costs {m O(deg(j)·M)}. *)

module Netlist := Qbpart_netlist.Netlist
module Topology := Qbpart_topology.Topology
module Assignment := Qbpart_partition.Assignment

type t

val create :
  ?p:float array array ->
  ?alpha:float ->
  ?beta:float ->
  Netlist.t ->
  Topology.t ->
  Assignment.t ->
  t
(** Build the table for the given starting assignment.  The assignment
    array is copied; use {!assignment} to read the evolving state. *)

val assignment : t -> Assignment.t
(** The current assignment (shared array — do not mutate). *)

val m : t -> int
(** Number of partitions. *)

val beta : t -> float
(** The quadratic-term scale the table was built with (used by
    {!Buckets} to bound the direct-wire swap correction). *)

val loads : t -> float array
(** Current partition loads (shared array — do not mutate). *)

val move_delta : t -> j:int -> target:int -> float
(** Objective change if [j] moved to [target] (0 when already there). *)

val swap_delta : t -> j1:int -> j2:int -> float
(** Objective change if [j1] and [j2] exchanged partitions, including
    the correction for a direct wire between them (both individual
    deltas assume the other endpoint stays put). *)

val apply_move : t -> j:int -> target:int -> unit
(** Move [j] and update all affected deltas and loads. *)

val apply_swap : t -> j1:int -> j2:int -> unit
(** Exchange two components' partitions. *)

val move_fits : t -> Topology.t -> j:int -> target:int -> bool
(** Capacity check for a single move. *)

val swap_fits : t -> Topology.t -> j1:int -> j2:int -> bool
(** Capacity check for a swap (both directions must fit after the
    exchange). *)
