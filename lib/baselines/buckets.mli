(** Fiduccia–Mattheyses-style gain buckets, generalized to M-way moves.

    Both baselines pick, each step, the legal move (GFM) or swap (GKL)
    with the most negative delta — a full {m N×M} (or {m N²}) scan per
    step in the naive implementation.  This module keeps every
    (component, destination-partition) move cell on a doubly-linked
    bucket list keyed by a quantized gain, so selection touches only
    the few lowest buckets of each partition-pair row and updates cost
    {m O(deg·M)} per applied move.

    {2 Cell layout}

    Cell [c = j*M + i] stands for "move component [j] to partition
    [i]".  Cells live in flat [prev]/[next]/[bucket] arrays (no
    records, no boxing); [-1] terminates lists.  Cells with
    [i = a.(j)] and cells of locked components are unlinked.

    Rows group cells by (source, destination) partition pair:
    cell [c] belongs to row [a.(j)*M + i].  GFM selection scans the
    {m M(M-1)} rows' lowest buckets; GKL selection pairs row
    {m (p1→p2)} against row {m (p2→p1)} so a swap candidate's key
    lower-bound is the sum of two bucket bounds plus a precomputed
    direct-wire correction bound.

    {2 Gain scaling and overflow}

    Gains are floats; keys are [floor ((g - g0) / q) + 1] with [g0]/[q]
    fitted to the gain range at the last {!reset}.  Buckets are
    {e coarse filters}, never the comparison itself: selection scans
    every bucket whose lower bound could still contain a winner and
    compares exact deltas (with the scan implementations' exact
    tie-breaking).  Gains drifting outside the fitted range during a
    pass clamp into the end buckets — bucket [0] has lower bound
    [-inf], the top bucket is open above — which degrades those
    buckets to scans but never drops or misorders a candidate. *)

module Netlist := Qbpart_netlist.Netlist
module Topology := Qbpart_topology.Topology

type t

val create : ?nbuckets:int -> Netlist.t -> Topology.t -> Gains.t -> t
(** Wrap a gains table.  [nbuckets] (default 128, clamped to at least
    8) trades memory ({m M²·nbuckets} ints) against quantization
    collisions.  The structure starts linked, as after {!reset}. *)

val gains : t -> Gains.t
(** The wrapped table (shared, not a copy). *)

val reset : t -> unit
(** Start-of-pass: unlock everything, refit the gain scale to the
    current gain range, relink every cell.  {m O(N·M + M²·nbuckets)}. *)

val lock : t -> int -> unit
(** Lock a component for the rest of the pass: its cells are unlinked
    and it stops appearing in selections until {!reset}. *)

val is_locked : t -> int -> bool

val apply_move : t -> j:int -> target:int -> unit
(** [Gains.apply_move] plus relinking of the mover's and its
    neighbors' cells.  {m O(deg·M)}. *)

val apply_swap : t -> j1:int -> j2:int -> unit
(** Exchange two components' partitions (two moves). *)

val best_move : t -> legal:(j:int -> target:int -> bool) -> (int * int * float) option
(** [best_move t ~legal] is [Some (j, i, delta)] for the legal move
    minimizing [(delta, j, i)] lexicographically over unlocked
    components — exactly the move the GFM row scan selects, including
    ties.  [legal] is called lazily, only on candidates that beat the
    incumbent; it must be pure.  [None] when no linked cell is
    legal. *)

val best_swap : t -> legal:(j1:int -> j2:int -> bool) -> (int * int * float) option
(** [best_swap t ~legal] is [Some (j1, j2, delta)] ([j1 < j2]) for the
    legal cross-partition swap minimizing [(delta, j1, j2)]
    lexicographically — exactly the pair the GKL pair scan selects.
    Pruned by bucket key sums plus a precomputed lower bound on the
    direct-wire correction term. *)
