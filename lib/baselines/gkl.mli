(** GKL — generalized Kernighan–Lin baseline (paper section 5).

    "A generalization of Kernighan & Lin's heuristic, switching a pair
    of components at a time.  Associated with each component are (N−1)
    gain entries, each entry representing the potential gain if that
    component is switched with the corresponding component."

    Outer loops follow KL: within a loop, repeatedly apply the
    best-gain legal pair swap (negative gains allowed), lock both
    components, and rewind to the best prefix at the end; the paper
    caps the outer loops at 6 "due to excessive CPU runtime".  A swap
    is legal iff both components fit their new partitions and neither
    end violates timing at its new location (evaluated with the other
    end already moved).  Because exchanging two components of unequal
    size can break C1, capacity is re-checked per swap.

    An additional inner-loop stall cutoff bounds the number of
    consecutive non-improving swaps explored; KL's full pass is
    retained when the cutoff is large.  This repository's default (80)
    changes results negligibly while keeping the quadratic pair scan
    affordable — the same trade the paper makes with its outer-loop
    cutoff. *)

module Netlist := Qbpart_netlist.Netlist
module Topology := Qbpart_topology.Topology
module Constraints := Qbpart_timing.Constraints
module Assignment := Qbpart_partition.Assignment

type selection =
  | Scan     (** full N² pair scan per swap — the reference implementation *)
  | Buckets  (** {!Buckets} partition-pair bucket selection — same
                 swaps, same tie-breaking, bit-identical results
                 (property-tested against [Scan]) *)

type config = {
  max_outer : int;   (** outer-loop cap (paper: 6) *)
  stall_cutoff : int;(** stop the inner loop after this many
                         consecutive swaps without a new best prefix *)
  epsilon : float;   (** minimum outer-loop improvement to continue *)
  dummies : int;
      (** Kernighan & Lin's classic device for unequal sizes: each
          partition's spare capacity is padded with this many
          unconnected dummy components (geometric size split), so that
          swapping a real component with a dummy realizes a plain
          move and the swap neighbourhood subsumes GFM's.  0 restricts
          the search to pure component-pair switches. *)
  selection : selection;  (** swap-selection kernel (default [Buckets]) *)
}

val default_config : config
(** [max_outer = 6], [stall_cutoff] effectively unbounded,
    [epsilon = 1e-9], [dummies = 6]. *)

type result = {
  assignment : Assignment.t;
  cost : float;     (** equation-(1) objective *)
  outer_loops : int;
  swaps : int;      (** swaps applied before rewinds *)
  interrupted : bool; (** [should_stop] fired before convergence *)
}

val solve :
  ?config:config ->
  ?p:float array array ->
  ?alpha:float ->
  ?beta:float ->
  ?constraints:Constraints.t ->
  ?should_stop:(unit -> bool) ->
  Netlist.t ->
  Topology.t ->
  initial:Assignment.t ->
  result
(** [should_stop] is polled before every pair-swap selection (each one
    is a quadratic scan, the natural checkpoint granularity); when it
    fires the inner loop is cut short, rewound to its best prefix, and
    the best-so-far (still feasible) solution is returned with
    [interrupted = true].
    @raise Invalid_argument if [initial] is infeasible. *)
