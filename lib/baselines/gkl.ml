module Netlist = Qbpart_netlist.Netlist
module Topology = Qbpart_topology.Topology
module Constraints = Qbpart_timing.Constraints
module Check = Qbpart_timing.Check
module Assignment = Qbpart_partition.Assignment
module Evaluate = Qbpart_partition.Evaluate
module Validate = Qbpart_partition.Validate

type selection = Scan | Buckets

type config = {
  max_outer : int;
  stall_cutoff : int;
  epsilon : float;
  dummies : int;
  selection : selection;
}

let default_config =
  { max_outer = 6; stall_cutoff = 1_000_000; epsilon = 1e-9; dummies = 6; selection = Buckets }

type result = {
  assignment : Assignment.t;
  cost : float;
  outer_loops : int;
  swaps : int;
  interrupted : bool;
}

(* Kernighan & Lin's classic treatment of unequal partition sizes:
   pad each partition's spare capacity with unconnected dummy
   components, so that "swap with a dummy" realizes a plain move.
   Each partition's spare is split into [chunks] dummies of sizes
   spare/2, spare/3, spare/6, ... (harmonic-ish split, exact fill).
   Returns the extended netlist, the extended initial assignment, the
   extended P matrix (dummies cost 0 everywhere) and the real
   component count. *)
let with_dummies ~chunks ?p nl topo initial =
  let n = Netlist.n nl in
  let m = Topology.m topo in
  let loads = Assignment.loads nl ~m initial in
  let b = Netlist.Builder.create () in
  Array.iter
    (fun c ->
      ignore
        (Netlist.Builder.add_component b
           ~name:(Qbpart_netlist.Component.name c)
           ~size:(Qbpart_netlist.Component.size c)
           ()))
    (Netlist.components nl);
  Array.iter
    (fun w ->
      Netlist.Builder.add_wire b (Qbpart_netlist.Wire.u w) (Qbpart_netlist.Wire.v w)
        ~weight:(Qbpart_netlist.Wire.weight w) ())
    (Netlist.wires nl);
  let extra = ref [] in
  for i = 0 to m - 1 do
    (* geometric split: spare/2, spare/4, ..., remainder — a mix of
       coarse and fine free-space chunks.  Only 70% of the spare is
       materialized as dummies: filling it exactly would leave every
       partition at capacity and outlaw all unequal-size swaps. *)
    let spare = ref (0.7 *. (Topology.capacity topo i -. loads.(i))) in
    for k = 1 to chunks do
      let size = if k = chunks then !spare else !spare /. 2.0 in
      if size > 1e-9 then begin
        let id =
          Netlist.Builder.add_component b ~name:(Printf.sprintf "__dummy_%d_%d" i k) ~size ()
        in
        extra := (id, i) :: !extra;
        spare := !spare -. size
      end
    done
  done;
  let nl' = Netlist.Builder.build b in
  let initial' = Array.make (Netlist.n nl') 0 in
  Array.blit initial 0 initial' 0 n;
  List.iter (fun (id, i) -> initial'.(id) <- i) !extra;
  let p' =
    Option.map
      (fun p ->
        Array.map (fun row ->
            let row' = Array.make (Netlist.n nl') 0.0 in
            Array.blit row 0 row' 0 n;
            row')
          p)
      p
  in
  (nl', initial', p')

let solve ?(config = default_config) ?p ?alpha ?beta ?constraints
    ?(should_stop = fun () -> false) nl topo ~initial =
  (match Validate.check ?constraints nl topo initial with
  | [] -> ()
  | issue :: _ ->
    invalid_arg
      (Format.asprintf "Gkl.solve: initial solution infeasible: %a" Validate.pp_issue issue));
  let real_n = Netlist.n nl in
  let nl, initial, p =
    if config.dummies > 0 then with_dummies ~chunks:config.dummies ?p nl topo initial
    else (nl, initial, p)
  in
  let n = Netlist.n nl in
  let gains = Gains.create ?p ?alpha ?beta nl topo initial in
  let a = Gains.assignment gains in
  let locked = Array.make n false in
  (* timing legality of the full exchange: each end is checked at its
     new partition with the other end already relocated *)
  let swap_timing_ok j1 j2 =
    match constraints with
    | None -> true
    | Some c ->
      (* dummies carry no timing constraints *)
      let p1 = a.(j1) and p2 = a.(j2) in
      let where_for jm other_at j' =
        if j' = jm then None else if j' = (if jm = j1 then j2 else j1) then Some other_at
        else Some a.(j')
      in
      (j1 >= real_n || Check.placement_ok c topo ~j:j1 ~at:p2 ~where:(where_for j1 p1))
      && (j2 >= real_n || Check.placement_ok c topo ~j:j2 ~at:p1 ~where:(where_for j2 p2))
  in
  let buckets =
    match config.selection with
    | Buckets -> Some (Buckets.create nl topo gains)
    | Scan -> None
  in
  let legal ~j1 ~j2 = Gains.swap_fits gains topo ~j1 ~j2 && swap_timing_ok j1 j2 in
  let total_swaps = ref 0 in
  let outer = ref 0 in
  let interrupted = ref false in
  let stop () =
    if not !interrupted then interrupted := should_stop ();
    !interrupted
  in
  let improved = ref true in
  while !improved && !outer < config.max_outer && not (stop ()) do
    incr outer;
    improved := false;
    Array.fill locked 0 n false;
    Option.iter Buckets.reset buckets;
    let trail = ref [] in (* (j1, j2) applied swaps, most recent first *)
    let trail_len = ref 0 in
    let cum = ref 0.0 and best_cum = ref 0.0 and best_len = ref 0 in
    let stall = ref 0 in
    let progress = ref true in
    while !progress && !stall < config.stall_cutoff && not (stop ()) do
      (* the bucket path selects the same (delta, j1, j2)-lexicographic
         minimum as the pair scan, pruned by partition-pair bucket
         bounds instead of touching all N² pairs *)
      let selected =
        match buckets with
        | Some b -> Buckets.best_swap b ~legal
        | None ->
          let best_j1 = ref (-1) and best_j2 = ref (-1) and best_d = ref infinity in
          for j1 = 0 to n - 1 do
            if not locked.(j1) then
              for j2 = j1 + 1 to n - 1 do
                if (not locked.(j2)) && a.(j1) <> a.(j2) then begin
                  let d = Gains.swap_delta gains ~j1 ~j2 in
                  if d < !best_d then
                    if Gains.swap_fits gains topo ~j1 ~j2 && swap_timing_ok j1 j2 then begin
                      best_d := d;
                      best_j1 := j1;
                      best_j2 := j2
                    end
                end
              done
          done;
          if !best_j1 = -1 then None else Some (!best_j1, !best_j2, !best_d)
      in
      match selected with
      | None -> progress := false
      | Some (j1, j2, d) ->
        trail := (j1, j2) :: !trail;
        incr trail_len;
        (match buckets with
        | Some b ->
          (* lock first: the movers' own cells then skip relinking *)
          Buckets.lock b j1;
          Buckets.lock b j2;
          Buckets.apply_swap b ~j1 ~j2
        | None ->
          Gains.apply_swap gains ~j1 ~j2;
          locked.(j1) <- true;
          locked.(j2) <- true);
        incr total_swaps;
        cum := !cum +. d;
        if !cum < !best_cum -. config.epsilon then begin
          best_cum := !cum;
          best_len := !trail_len;
          stall := 0
        end
        else incr stall
    done;
    let rewind = !trail_len - !best_len in
    let rec undo k trail =
      if k > 0 then
        match trail with
        | (j1, j2) :: rest ->
          Gains.apply_swap gains ~j1 ~j2;
          undo (k - 1) rest
        | [] -> assert false
    in
    undo rewind !trail;
    if !best_cum < -.config.epsilon then improved := true
  done;
  let assignment = Array.sub a 0 real_n in
  {
    assignment;
    cost = Evaluate.objective ?alpha ?beta ?p nl topo a;
    outer_loops = !outer;
    swaps = !total_swaps;
    interrupted = !interrupted;
  }
