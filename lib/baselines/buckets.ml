module Netlist = Qbpart_netlist.Netlist
module Topology = Qbpart_topology.Topology
module Wire = Qbpart_netlist.Wire

(* Cell c = j*m + i is "move component j to partition i"; it lives in
   row a.(j)*m + i (source, destination partition pair).  Buckets are
   coarse filters over quantized gains: selection always recompares
   exact deltas, so quantization only costs extra scanning, never
   correctness. *)
type t = {
  nl : Netlist.t;
  topo : Topology.t;
  gains : Gains.t;
  m : int;
  n : int;
  nbuckets : int;
  heads : int array;       (* m*m*nbuckets: first cell per bucket, -1 = empty *)
  next : int array;        (* n*m *)
  prev : int array;        (* n*m *)
  cell_bucket : int array; (* n*m: global bucket index, -1 = unlinked *)
  min_key : int array;     (* m*m: no linked cell of the row keys below this *)
  row_count : int array;   (* m*m: linked cells per row *)
  locked : bool array;     (* n *)
  mutable g0 : float;      (* gain of key 1's lower bound, fitted at reset *)
  mutable q : float;       (* bucket width, > 0 *)
  corr_lb : float;         (* lower bound on the direct-wire swap correction *)
}

let gains t = t.gains
let is_locked t j = t.locked.(j)

(* Key 0 is the underflow clamp (lower bound -inf, for gains that
   drift below the fitted range mid-pass); keys 1..nbuckets-1 cover
   [g0, g0 + (nbuckets-2)q), the top key open above. *)
let lb t k = if k = 0 then neg_infinity else t.g0 +. (float_of_int (k - 1) *. t.q)

let key_of t g =
  if g < t.g0 then 0
  else begin
    let k = int_of_float (Float.floor ((g -. t.g0) /. t.q)) in
    (* float rounding can push floor one interval too high; the bucket
       invariant g >= lb(key) is what selection's pruning relies on *)
    let k = if t.g0 +. (float_of_int k *. t.q) > g then k - 1 else k in
    let k = k + 1 in
    if k < 1 then 1 else if k > t.nbuckets - 1 then t.nbuckets - 1 else k
  end

let unlink t c =
  let gb = t.cell_bucket.(c) in
  if gb >= 0 then begin
    let nx = t.next.(c) and pv = t.prev.(c) in
    if pv >= 0 then t.next.(pv) <- nx else t.heads.(gb) <- nx;
    if nx >= 0 then t.prev.(nx) <- pv;
    t.cell_bucket.(c) <- -1;
    let row = gb / t.nbuckets in
    t.row_count.(row) <- t.row_count.(row) - 1
  end

let link t c ~row ~key =
  let gb = (row * t.nbuckets) + key in
  let head = t.heads.(gb) in
  t.prev.(c) <- -1;
  t.next.(c) <- head;
  if head >= 0 then t.prev.(head) <- c;
  t.heads.(gb) <- c;
  t.cell_bucket.(c) <- gb;
  t.row_count.(row) <- t.row_count.(row) + 1;
  if key < t.min_key.(row) then t.min_key.(row) <- key

(* Unlink all of j's cells, relink the m-1 live ones against the
   current assignment and gains (no-op relink for locked components:
   their cells stay out until reset). *)
let relink_component t j =
  let base = j * t.m in
  for i = 0 to t.m - 1 do
    unlink t (base + i)
  done;
  if not t.locked.(j) then begin
    let from = (Gains.assignment t.gains).(j) in
    let row_base = from * t.m in
    for i = 0 to t.m - 1 do
      if i <> from then
        link t (base + i) ~row:(row_base + i)
          ~key:(key_of t (Gains.move_delta t.gains ~j ~target:i))
    done
  end

let lock t j =
  if not t.locked.(j) then begin
    t.locked.(j) <- true;
    let base = j * t.m in
    for i = 0 to t.m - 1 do
      unlink t (base + i)
    done
  end

let reset t =
  Array.fill t.locked 0 t.n false;
  Array.fill t.heads 0 (Array.length t.heads) (-1);
  Array.fill t.cell_bucket 0 (Array.length t.cell_bucket) (-1);
  Array.fill t.row_count 0 (Array.length t.row_count) 0;
  Array.fill t.min_key 0 (Array.length t.min_key) t.nbuckets;
  let a = Gains.assignment t.gains in
  let gmin = ref infinity and gmax = ref neg_infinity in
  for j = 0 to t.n - 1 do
    let from = a.(j) in
    for i = 0 to t.m - 1 do
      if i <> from then begin
        let g = Gains.move_delta t.gains ~j ~target:i in
        if g < !gmin then gmin := g;
        if g > !gmax then gmax := g
      end
    done
  done;
  if !gmin > !gmax then begin
    (* no movable cell (m = 1 or n = 0) *)
    t.g0 <- 0.0;
    t.q <- 1.0
  end
  else begin
    t.g0 <- !gmin;
    let span = !gmax -. !gmin in
    t.q <- (if span > 0.0 then span /. float_of_int (t.nbuckets - 2) else 1.0)
  end;
  for j = 0 to t.n - 1 do
    let from = a.(j) in
    let base = j * t.m and row_base = from * t.m in
    for i = 0 to t.m - 1 do
      if i <> from then
        link t (base + i) ~row:(row_base + i)
          ~key:(key_of t (Gains.move_delta t.gains ~j ~target:i))
    done
  done

(* The GKL swap delta is gA(j1) + gB(j2) + corr, where corr re-adds
   the direct wire between the endpoints.  For pruning we need a
   constant lower bound on corr: it is beta * w * (b(x,y) + b(y,x))
   for some wire weight w and partition pair (x,y), or 0 for unwired
   pairs, so the minimum over the four products of the weight and
   b-sum range endpoints (and 0) bounds every pair. *)
let corr_lower_bound nl topo gains =
  let m = Topology.m topo in
  if m < 2 || Netlist.wire_count nl = 0 then 0.0
  else begin
    let wmin = ref infinity and wmax = ref neg_infinity in
    Netlist.iter_wires nl (fun w ->
        let x = Wire.weight w in
        if x < !wmin then wmin := x;
        if x > !wmax then wmax := x);
    let smin = ref infinity and smax = ref neg_infinity in
    for x = 0 to m - 1 do
      for y = 0 to m - 1 do
        if x <> y then begin
          let s = Topology.b topo x y +. Topology.b topo y x in
          if s < !smin then smin := s;
          if s > !smax then smax := s
        end
      done
    done;
    let beta = Gains.beta gains in
    Float.min 0.0
      (Float.min
         (Float.min (beta *. !wmin *. !smin) (beta *. !wmin *. !smax))
         (Float.min (beta *. !wmax *. !smin) (beta *. !wmax *. !smax)))
  end

let create ?(nbuckets = 128) nl topo gains =
  let nbuckets = max 8 nbuckets in
  let m = Gains.m gains in
  let n = Netlist.n nl in
  let t =
    {
      nl;
      topo;
      gains;
      m;
      n;
      nbuckets;
      heads = Array.make (m * m * nbuckets) (-1);
      next = Array.make (max 1 (n * m)) (-1);
      prev = Array.make (max 1 (n * m)) (-1);
      cell_bucket = Array.make (max 1 (n * m)) (-1);
      min_key = Array.make (m * m) nbuckets;
      row_count = Array.make (m * m) 0;
      locked = Array.make (max 1 n) false;
      g0 = 0.0;
      q = 1.0;
      corr_lb = corr_lower_bound nl topo gains;
    }
  in
  reset t;
  t

let apply_move t ~j ~target =
  Gains.apply_move t.gains ~j ~target;
  relink_component t j;
  let xadj = Netlist.adj_offsets t.nl in
  let anbr = Netlist.adj_targets t.nl in
  for k = xadj.(j) to xadj.(j + 1) - 1 do
    relink_component t anbr.(k)
  done

let apply_swap t ~j1 ~j2 =
  let a = Gains.assignment t.gains in
  let p1 = a.(j1) and p2 = a.(j2) in
  if p1 <> p2 then begin
    apply_move t ~j:j1 ~target:p2;
    apply_move t ~j:j2 ~target:p1
  end

(* Advance a row's min-key pointer past emptied buckets (lazy: unlink
   never lowers it back, link does). *)
let advance t row =
  let base = row * t.nbuckets in
  let k = ref t.min_key.(row) in
  while !k < t.nbuckets && t.heads.(base + !k) < 0 do
    incr k
  done;
  t.min_key.(row) <- !k;
  !k

let best_move t ~legal =
  let m = t.m and nb = t.nbuckets in
  let best_d = ref infinity and best_j = ref (-1) and best_i = ref (-1) in
  for row = 0 to (m * m) - 1 do
    let count = t.row_count.(row) in
    if count > 0 then begin
      let dst = row mod m in
      let base = row * nb in
      let seen = ref 0 in
      let k = ref (advance t row) in
      let continue = ref true in
      while !continue && !k < nb && !seen < count do
        if lb t !k <= !best_d then begin
          let c = ref t.heads.(base + !k) in
          while !c >= 0 do
            incr seen;
            let j = !c / m in
            let d = Gains.move_delta t.gains ~j ~target:dst in
            if
              (d < !best_d
              || (d = !best_d && (j < !best_j || (j = !best_j && dst < !best_i))))
              && legal ~j ~target:dst
            then begin
              best_d := d;
              best_j := j;
              best_i := dst
            end;
            c := t.next.(!c)
          done;
          incr k
        end
        else continue := false
      done
    end
  done;
  if !best_j < 0 then None else Some (!best_j, !best_i, !best_d)

let best_swap t ~legal =
  let m = t.m and nb = t.nbuckets in
  let best_d = ref infinity and bj1 = ref (-1) and bj2 = ref (-1) in
  for p1 = 0 to m - 2 do
    for p2 = p1 + 1 to m - 1 do
      let ra = (p1 * m) + p2 and rb = (p2 * m) + p1 in
      let ca = t.row_count.(ra) and cb = t.row_count.(rb) in
      if ca > 0 && cb > 0 then begin
        let base_a = ra * nb and base_b = rb * nb in
        let kb0 = advance t rb in
        let lb_b0 = lb t kb0 in
        let ka = ref (advance t ra) in
        let seen_a = ref 0 in
        let cont_a = ref true in
        while !cont_a && !ka < nb && !seen_a < ca do
          if t.heads.(base_a + !ka) < 0 then incr ka
          else if lb t !ka +. lb_b0 +. t.corr_lb <= !best_d then begin
            let lb_a = lb t !ka in
            let na_k = ref 0 in
            let c = ref t.heads.(base_a + !ka) in
            while !c >= 0 do
              incr na_k;
              c := t.next.(!c)
            done;
            let kb = ref kb0 in
            let seen_b = ref 0 in
            let cont_b = ref true in
            while !cont_b && !kb < nb && !seen_b < cb do
              if t.heads.(base_b + !kb) < 0 then incr kb
              else if lb_a +. lb t !kb +. t.corr_lb <= !best_d then begin
                let c1 = ref t.heads.(base_a + !ka) in
                while !c1 >= 0 do
                  let ja = !c1 / m in
                  let c2 = ref t.heads.(base_b + !kb) in
                  while !c2 >= 0 do
                    if !c1 = t.heads.(base_a + !ka) then incr seen_b;
                    let jb = !c2 / m in
                    let j1 = if ja < jb then ja else jb
                    and j2 = if ja < jb then jb else ja in
                    let d = Gains.swap_delta t.gains ~j1 ~j2 in
                    if
                      (d < !best_d
                      || (d = !best_d && (j1 < !bj1 || (j1 = !bj1 && j2 < !bj2))))
                      && legal ~j1 ~j2
                    then begin
                      best_d := d;
                      bj1 := j1;
                      bj2 := j2
                    end;
                    c2 := t.next.(!c2)
                  done;
                  c1 := t.next.(!c1)
                done;
                incr kb
              end
              else cont_b := false
            done;
            seen_a := !seen_a + !na_k;
            incr ka
          end
          else cont_a := false
        done
      end
    done
  done;
  if !bj1 < 0 then None else Some (!bj1, !bj2, !best_d)
