(** GFM — generalized Fiduccia–Mattheyses baseline (paper section 5).

    "A generalization of Fiduccia & Mattheyses' approach, moving one
    component at a time.  Associated with each component are (M−1)
    gain entries, each entry representing the potential gain if that
    component is moved to the corresponding partition."

    Pass discipline is classic FM: starting from a feasible solution,
    repeatedly apply the best-gain {e legal} move (even when the gain
    is negative — hill-climbing within a pass), lock the moved
    component, and at the end of the pass rewind to the best prefix.
    Passes repeat until one yields no improvement.  A move is legal iff
    it keeps capacity feasibility and introduces no timing violation,
    so a feasible input yields a feasible output. *)

module Netlist := Qbpart_netlist.Netlist
module Topology := Qbpart_topology.Topology
module Constraints := Qbpart_timing.Constraints
module Assignment := Qbpart_partition.Assignment

type selection =
  | Scan     (** full N×M row scan per move — the reference implementation *)
  | Buckets  (** {!Buckets} gain-bucket selection — same moves, same
                 tie-breaking, bit-identical results (property-tested
                 against [Scan]) *)

type config = {
  max_passes : int;  (** safety bound on passes (default 50) *)
  epsilon : float;   (** minimum pass improvement to continue (default 1e-9) *)
  selection : selection;  (** move-selection kernel (default [Buckets]) *)
}

val default_config : config

type result = {
  assignment : Assignment.t;
  cost : float;    (** equation-(1) objective of [assignment] *)
  passes : int;    (** passes executed *)
  moves : int;     (** total moves applied (before rewinds) *)
  interrupted : bool; (** [should_stop] fired before convergence *)
}

val solve :
  ?config:config ->
  ?p:float array array ->
  ?alpha:float ->
  ?beta:float ->
  ?constraints:Constraints.t ->
  ?should_stop:(unit -> bool) ->
  Netlist.t ->
  Topology.t ->
  initial:Assignment.t ->
  result
(** [should_stop] is polled before every move selection; when it fires
    the current pass is cut short, rewound to its best prefix, and the
    best-so-far (still feasible) solution is returned with
    [interrupted = true].
    @raise Invalid_argument if [initial] is not capacity- and
    timing-feasible — both baselines require a feasible start, exactly
    as in the paper. *)
