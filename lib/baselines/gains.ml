module Netlist = Qbpart_netlist.Netlist
module Topology = Qbpart_topology.Topology
module Assignment = Qbpart_partition.Assignment

type t = {
  nl : Netlist.t;
  topo : Topology.t;
  p : float array array option;
  alpha : float;
  beta : float;
  a : int array;              (* current assignment *)
  loads : float array;
  delta : float array array;  (* delta.(j).(i): objective change of j -> i *)
  m : int;
}

(* Objective convention: the wire j--j' contributes
   beta * w * b(pos(min), pos(max)); the b argument order follows the
   evaluator's canonical endpoint order, so gains stay exact even for
   an asymmetric B matrix. *)
let wire_term t j j' w ~at ~at' =
  if j < j' then t.beta *. w *. Topology.b t.topo at at'
  else t.beta *. w *. Topology.b t.topo at' at

let lin_term t j i =
  match t.p with None -> 0.0 | Some p -> t.alpha *. p.(i).(j)

(* Absolute cost of placing j at i against the current positions of
   everything else. *)
let cost_row t j row =
  for i = 0 to t.m - 1 do
    row.(i) <- lin_term t j i
  done;
  let xadj = Netlist.adj_offsets t.nl in
  let anbr = Netlist.adj_targets t.nl in
  let awgt = Netlist.adj_weights t.nl in
  for k = xadj.(j) to xadj.(j + 1) - 1 do
    let j' = anbr.(k) and w = awgt.(k) in
    let at' = t.a.(j') in
    for i = 0 to t.m - 1 do
      row.(i) <- row.(i) +. wire_term t j j' w ~at:i ~at':at'
    done
  done

let refresh_row t j =
  let row = t.delta.(j) in
  cost_row t j row;
  let own = row.(t.a.(j)) in
  for i = 0 to t.m - 1 do
    row.(i) <- row.(i) -. own
  done

let create ?p ?(alpha = 1.0) ?(beta = 1.0) nl topo a =
  let m = Topology.m topo in
  Assignment.check ~m a;
  let t =
    {
      nl;
      topo;
      p;
      alpha;
      beta;
      a = Assignment.copy a;
      loads = Assignment.loads nl ~m a;
      delta = Array.make_matrix (Netlist.n nl) m 0.0;
      m;
    }
  in
  for j = 0 to Netlist.n nl - 1 do
    refresh_row t j
  done;
  t

let assignment t = t.a
let loads t = t.loads
let m t = t.m
let beta t = t.beta
let move_delta t ~j ~target = t.delta.(j).(target)

let swap_delta t ~j1 ~j2 =
  let p1 = t.a.(j1) and p2 = t.a.(j2) in
  if p1 = p2 then 0.0
  else begin
    let d = t.delta.(j1).(p2) +. t.delta.(j2).(p1) in
    let w = Netlist.connection t.nl j1 j2 in
    if w = 0.0 then d
    else
      (* Both single-move deltas assumed the other endpoint stayed
         put, so each removed the full direct-wire term; the swap
         keeps the wire alive with exchanged endpoints. *)
      d
      +. wire_term t j1 j2 w ~at:p2 ~at':p1
      +. wire_term t j1 j2 w ~at:p1 ~at':p2
  end

let apply_move t ~j ~target =
  let from = t.a.(j) in
  if target <> from then begin
    let s = Netlist.size t.nl j in
    t.loads.(from) <- t.loads.(from) -. s;
    t.loads.(target) <- t.loads.(target) +. s;
    t.a.(j) <- target;
    (* j's own row: rebase on the new position *)
    let row = t.delta.(j) in
    let own = row.(target) in
    for i = 0 to t.m - 1 do
      row.(i) <- row.(i) -. own
    done;
    (* neighbors see the wire endpoint move from [from] to [target] *)
    let xadj = Netlist.adj_offsets t.nl in
    let anbr = Netlist.adj_targets t.nl in
    let awgt = Netlist.adj_weights t.nl in
    for k = xadj.(j) to xadj.(j + 1) - 1 do
      let j' = anbr.(k) and w = awgt.(k) in
      let row' = t.delta.(j') in
      let at' = t.a.(j') in
      let shift i = wire_term t j' j w ~at:i ~at':target -. wire_term t j' j w ~at:i ~at':from in
      let base = shift at' in
      for i = 0 to t.m - 1 do
        row'.(i) <- row'.(i) +. shift i -. base
      done
    done
  end

let apply_swap t ~j1 ~j2 =
  let p1 = t.a.(j1) and p2 = t.a.(j2) in
  if p1 <> p2 then begin
    apply_move t ~j:j1 ~target:p2;
    apply_move t ~j:j2 ~target:p1
  end

let move_fits t topo ~j ~target =
  target = t.a.(j)
  || t.loads.(target) +. Netlist.size t.nl j <= Topology.capacity topo target

let swap_fits t topo ~j1 ~j2 =
  let p1 = t.a.(j1) and p2 = t.a.(j2) in
  p1 = p2
  || begin
    let s1 = Netlist.size t.nl j1 and s2 = Netlist.size t.nl j2 in
    t.loads.(p1) -. s1 +. s2 <= Topology.capacity topo p1
    && t.loads.(p2) -. s2 +. s1 <= Topology.capacity topo p2
  end
